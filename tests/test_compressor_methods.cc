// Method-specific behaviour: the algorithmic properties that distinguish
// each compressor (statistical unbiasedness, selection rules, code sizes,
// low-rank structure, per-tensor state).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/compressors/compressors.h"
#include "core/registry.h"
#include "tensor/ops.h"

namespace grace::core {
namespace {

Tensor random_grad(uint64_t seed, int64_t n = 512) {
  Rng rng(seed);
  Tensor t(DType::F32, Shape{{n}});
  rng.fill_normal(t.f32(), 0.0f, 1.0f);
  return t;
}

// E[Q(x)] == x over repeated randomized compressions.
void expect_unbiased(Compressor& q, double tol) {
  Rng rng(42);
  Tensor grad = random_grad(5, 64);
  Tensor mean = Tensor::zeros(Shape{{64}});
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Tensor restored = q.decompress(q.compress(grad, "u", rng));
    ops::add(mean.f32(), restored.f32());
  }
  ops::scale(mean.f32(), 1.0f / static_cast<float>(trials));
  Tensor diff = mean;
  ops::sub(diff.f32(), grad.f32());
  EXPECT_LT(ops::linf_norm(diff.f32()), tol);
}

TEST(Qsgd, Unbiased) {
  auto q = compressors::make_qsgd(4);  // coarse levels stress the dithering
  expect_unbiased(*q, 0.25);
}

TEST(TernGrad, Unbiased) {
  auto q = compressors::make_terngrad();
  expect_unbiased(*q, 0.25);
}

TEST(Natural, Unbiased) {
  auto q = compressors::make_natural();
  expect_unbiased(*q, 0.15);
}

TEST(RandomK, UnbiasedVariantIsUnbiased) {
  auto q = compressors::make_randomk(0.25, /*unbiased=*/true);
  expect_unbiased(*q, 0.35);
}

TEST(Natural, OutputsArePowersOfTwo) {
  auto q = compressors::make_natural();
  Rng rng(1);
  Tensor grad = random_grad(2, 128);
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  for (float v : restored.f32()) {
    if (v == 0.0f) continue;
    const float l = std::log2(std::fabs(v));
    EXPECT_NEAR(l, std::round(l), 1e-5f);
  }
}

TEST(SignSgd, OutputsAreUnitSigns) {
  auto q = compressors::make_signsgd();
  Rng rng(1);
  Tensor grad = random_grad(3, 100);
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.ctx.wire_bits, 100u);  // exactly 1 bit per element
  Tensor restored = q->decompress(ct);
  for (int64_t i = 0; i < 100; ++i) {
    const float expect = grad.f32()[static_cast<size_t>(i)] >= 0.0f ? 1.0f : -1.0f;
    EXPECT_EQ(restored.f32()[static_cast<size_t>(i)], expect);
  }
}

TEST(Signum, MomentumSmoothsSignFlips) {
  auto q = compressors::make_signum(0.9);
  Rng rng(1);
  Tensor pos = Tensor::full(Shape{{8}}, 1.0f);
  Tensor neg = Tensor::full(Shape{{8}}, -0.2f);
  // Long positive history, then one small negative gradient: the sign of
  // the momentum must remain positive.
  for (int i = 0; i < 5; ++i) q->compress(pos, "t", rng);
  Tensor restored = q->decompress(q->compress(neg, "t", rng));
  for (float v : restored.f32()) EXPECT_EQ(v, 1.0f);
}

TEST(Signum, StateIsPerTensor) {
  auto q = compressors::make_signum(0.9);
  Rng rng(1);
  Tensor pos = Tensor::full(Shape{{4}}, 1.0f);
  Tensor neg = Tensor::full(Shape{{4}}, -1.0f);
  for (int i = 0; i < 3; ++i) q->compress(pos, "a", rng);
  Tensor restored = q->decompress(q->compress(neg, "b", rng));
  for (float v : restored.f32()) EXPECT_EQ(v, -1.0f);  // 'b' has no history
}

TEST(OneBit, DecodesToPartitionMeans) {
  auto q = compressors::make_onebit();
  Rng rng(1);
  Tensor grad = Tensor::from(std::vector<float>{-3, -1, 2, 6});
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  EXPECT_FLOAT_EQ(restored.f32()[0], -2.0f);  // mean of {-3,-1}
  EXPECT_FLOAT_EQ(restored.f32()[1], -2.0f);
  EXPECT_FLOAT_EQ(restored.f32()[2], 4.0f);   // mean of {2,6}
  EXPECT_FLOAT_EQ(restored.f32()[3], 4.0f);
}

TEST(EfSignSgd, ScaleIsMeanAbsoluteValue) {
  auto q = compressors::make_efsignsgd();
  Rng rng(1);
  Tensor grad = Tensor::from(std::vector<float>{-2, 2, -2, 2});
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(std::fabs(restored.f32()[static_cast<size_t>(i)]), 2.0f);
  }
}

TEST(TopK, SelectsLargestMagnitudes) {
  auto q = compressors::make_topk(0.1);
  Rng rng(1);
  Tensor grad = random_grad(6, 200);
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  const float kth = ops::kth_largest_abs(grad.f32(), 20);
  int64_t kept = 0;
  for (int64_t i = 0; i < 200; ++i) {
    const float v = restored.f32()[static_cast<size_t>(i)];
    if (v != 0.0f) {
      ++kept;
      EXPECT_EQ(v, grad.f32()[static_cast<size_t>(i)]);  // exact values kept
      EXPECT_GE(std::fabs(v), kth);
    }
  }
  EXPECT_EQ(kept, 20);
}

TEST(TopK, DeltaCompressorBound) {
  // ||x - Q(x)||^2 <= (1 - k/d) ||x||^2 for Top-k.
  auto q = compressors::make_topk(0.25);
  Rng rng(1);
  Tensor grad = random_grad(7, 400);
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  Tensor diff = restored;
  ops::sub(diff.f32(), grad.f32());
  const double err2 = std::pow(static_cast<double>(ops::l2_norm(diff.f32())), 2);
  const double norm2 = std::pow(static_cast<double>(ops::l2_norm(grad.f32())), 2);
  EXPECT_LE(err2, (1.0 - 0.25) * norm2 * 1.001);
}

TEST(RandomK, SelectsExactlyKDistinct) {
  auto q = compressors::make_randomk(0.05, false);
  Rng rng(9);
  Tensor grad = random_grad(8, 1000);
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.parts[1].numel(), 50);
  std::set<int32_t> uniq;
  for (int32_t i : ct.parts[1].i32()) uniq.insert(i);
  EXPECT_EQ(uniq.size(), 50u);
}

TEST(RandomK, DifferentRngsPickDifferentIndices) {
  auto q = compressors::make_randomk(0.05, false);
  Rng rng1(1), rng2(2);
  Tensor grad = random_grad(8, 1000);
  auto a = q->compress(grad, "t", rng1);
  auto b = q->compress(grad, "t", rng2);
  int same = 0;
  auto ai = a.parts[1].i32(), bi = b.parts[1].i32();
  for (int64_t i = 0; i < 50; ++i) same += ai[static_cast<size_t>(i)] == bi[static_cast<size_t>(i)];
  EXPECT_LT(same, 25);
}

TEST(ThresholdV, SelectsAboveThresholdOnly) {
  auto q = compressors::make_thresholdv(0.5);
  Rng rng(1);
  Tensor grad = Tensor::from(std::vector<float>{0.4f, -0.6f, 0.51f, 0.0f, -0.49f});
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  EXPECT_EQ(restored.f32()[0], 0.0f);
  EXPECT_EQ(restored.f32()[1], -0.6f);
  EXPECT_EQ(restored.f32()[2], 0.51f);
  EXPECT_EQ(restored.f32()[4], 0.0f);
}

TEST(Dgc, AccumulatesUntransmittedGradients) {
  auto q = compressors::make_dgc(0.02, 0.0);  // no momentum, pure accumulation
  Rng rng(1);
  // One huge element, many small ones; small ones must eventually ship via
  // the accumulation buffer v even though each round selects ~the top 2%.
  Tensor grad = Tensor::zeros(Shape{{100}});
  grad.f32()[0] = 100.0f;
  for (int64_t i = 1; i < 100; ++i) grad.f32()[static_cast<size_t>(i)] = 0.01f;
  double shipped_small = 0.0;
  for (int round = 0; round < 300; ++round) {
    Tensor restored = q->decompress(q->compress(grad, "t", rng));
    for (int64_t i = 1; i < 100; ++i) shipped_small += restored.f32()[static_cast<size_t>(i)];
  }
  // 300 rounds x 99 elements x 0.01 gradient mass, most of it accumulated
  // and eventually transmitted.
  EXPECT_GT(shipped_small, 100.0);
}

TEST(Adaptive, TwoValueQuantization) {
  auto q = compressors::make_adaptive(0.5);
  Rng rng(1);
  Tensor grad = Tensor::from(std::vector<float>{5, 3, -4, -2, 1, -1});
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  std::set<float> values;
  for (float v : restored.f32()) {
    if (v != 0.0f) values.insert(v);
  }
  EXPECT_LE(values.size(), 2u);  // one positive mean, one negative mean
}

TEST(SketchMl, CodesBoundedByBuckets) {
  auto q = compressors::make_sketchml(16);
  Rng rng(1);
  Tensor grad = random_grad(10, 300);
  auto ct = q->compress(grad, "t", rng);
  for (uint8_t c : ct.parts[0].u8()) EXPECT_LT(c, 16);
  // 4 bits per element + 16 representative floats.
  EXPECT_EQ(ct.ctx.wire_bits, 300u * 4 + 16u * 32);
}

TEST(SketchMl, ReconstructionPreservesOrderOfMagnitude) {
  auto q = compressors::make_sketchml(64);
  Rng rng(1);
  Tensor grad = random_grad(11, 2000);
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  Tensor diff = restored;
  ops::sub(diff.f32(), grad.f32());
  EXPECT_LT(ops::l2_norm(diff.f32()), 0.5f * ops::l2_norm(grad.f32()));
}

TEST(PowerSgd, ReconstructionIsLowRank) {
  auto q = compressors::make_powersgd(1);
  Rng rng(1);
  Tensor grad = random_grad(12, 64).reshaped(Shape{{8, 8}});
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.parts[0].shape(), Shape({8, 1}));  // P
  EXPECT_EQ(ct.parts[1].shape(), Shape({8, 1}));  // Q
  Tensor restored = q->decompress(ct);
  // Rank-1 check: every 2x2 minor of P q^T vanishes.
  auto m = restored.f32();
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      const float det = m[static_cast<size_t>(i * 8 + j)] * m[static_cast<size_t>((i + 1) * 8 + j + 1)] -
                        m[static_cast<size_t>(i * 8 + j + 1)] * m[static_cast<size_t>((i + 1) * 8 + j)];
      EXPECT_NEAR(det, 0.0f, 1e-3f);
    }
  }
}

TEST(PowerSgd, WarmStartConvergesOnFixedMatrix) {
  // Repeated compression of the same matrix = power iteration; the
  // reconstruction error must be non-increasing and approach the best
  // rank-r approximation.
  auto q = compressors::make_powersgd(2);
  Rng rng(1);
  Tensor grad = random_grad(13, 96).reshaped(Shape{{12, 8}});
  double first_err = -1.0, last_err = -1.0;
  for (int it = 0; it < 12; ++it) {
    Tensor restored = q->decompress(q->compress(grad, "t", rng));
    Tensor diff = restored;
    ops::sub(diff.f32(), grad.f32());
    last_err = ops::l2_norm(diff.f32());
    if (first_err < 0) first_err = last_err;
  }
  EXPECT_LT(last_err, first_err * 0.9);
}

TEST(PowerSgd, WireSizeMatchesFormula) {
  auto q = compressors::make_powersgd(4);
  Rng rng(1);
  Tensor grad = random_grad(14, 32 * 20).reshaped(Shape{{32, 20}});
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.ctx.wire_bits, static_cast<uint64_t>((32 + 20) * 4) * 32);
}

TEST(PowerSgd, RankClampedForVectors) {
  auto q = compressors::make_powersgd(4);
  Rng rng(1);
  Tensor bias = random_grad(15, 10);  // rank-1 shape (10) -> matrix (10,1)
  Tensor restored = q->decompress(q->compress(bias, "bias", rng));
  EXPECT_EQ(restored.shape(), Shape({10}));
}

TEST(EightBit, OneByteCodesAndBoundedError) {
  auto q = compressors::make_eightbit();
  Rng rng(1);
  Tensor grad = random_grad(16, 500);
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.ctx.wire_bits, 500u * 8 + 32);
  Tensor restored = q->decompress(ct);
  const float mx = ops::linf_norm(grad.f32());
  for (int64_t i = 0; i < 500; ++i) {
    const float a = grad.f32()[static_cast<size_t>(i)];
    const float b = restored.f32()[static_cast<size_t>(i)];
    // Minifloat relative error within a mantissa step, or the value is in
    // the sub-2^-7 denormal band that flushes to small codes.
    EXPECT_TRUE(std::fabs(a - b) <= 0.05f * std::fabs(a) + mx / 100.0f)
        << a << " vs " << b;
  }
}

TEST(Inceptionn, TagsSpanPrecisionLevels) {
  auto q = compressors::make_inceptionn();
  Rng rng(1);
  // Values across four magnitude bands relative to max = 1.0.
  Tensor grad = Tensor::from(std::vector<float>{1e-5f, 0.01f, 0.2f, 1.0f});
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  EXPECT_EQ(restored.f32()[0], 0.0f);               // dropped
  EXPECT_NEAR(restored.f32()[1], 0.01f, 0.001f);    // 8-bit band
  EXPECT_NEAR(restored.f32()[2], 0.2f, 0.001f);     // 16-bit band
  EXPECT_EQ(restored.f32()[3], 1.0f);               // exact 32-bit
}

TEST(Qsgd, CodeBitsDependOnLevels) {
  Rng rng(1);
  Tensor grad = random_grad(17, 100);
  auto q4 = compressors::make_qsgd(4);
  auto q64 = compressors::make_qsgd(64);
  // ceil(log2(5)) + 1 = 4 bits; ceil(log2(65)) + 1 = 8 bits.
  EXPECT_EQ(q4->compress(grad, "t", rng).ctx.wire_bits, 100u * 4 + 32);
  EXPECT_EQ(q64->compress(grad, "t", rng).ctx.wire_bits, 100u * 8 + 32);
}

}  // namespace
}  // namespace grace::core
