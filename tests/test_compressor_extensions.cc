// Method-specific tests for the extension compressors (surveyed in the
// paper's Table I, implemented here beyond its 16).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/compressors/compressors.h"
#include "core/registry.h"
#include "tensor/ops.h"

namespace grace::core {
namespace {

Tensor random_grad(uint64_t seed, int64_t n = 512) {
  Rng rng(seed);
  Tensor t(DType::F32, Shape{{n}});
  rng.fill_normal(t.f32(), 0.0f, 1.0f);
  return t;
}

void expect_unbiased(Compressor& q, double tol, int64_t n = 64,
                     int trials = 3000) {
  Rng rng(42);
  Tensor grad = random_grad(5, n);
  Tensor mean = Tensor::zeros(Shape{{n}});
  for (int t = 0; t < trials; ++t) {
    Tensor restored = q.decompress(q.compress(grad, "u", rng));
    ops::add(mean.f32(), restored.f32());
  }
  ops::scale(mean.f32(), 1.0f / static_cast<float>(trials));
  Tensor diff = mean;
  ops::sub(diff.f32(), grad.f32());
  EXPECT_LT(ops::linf_norm(diff.f32()), tol);
}

TEST(LpcSvrg, Unbiased) {
  auto q = compressors::make_lpcsvrg(3);
  expect_unbiased(*q, 0.2);
}

TEST(LpcSvrg, CodesRespectBitWidth) {
  auto q = compressors::make_lpcsvrg(3);
  Rng rng(1);
  Tensor grad = random_grad(2, 200);
  auto ct = q->compress(grad, "t", rng);
  for (uint8_t c : ct.parts[0].u8()) EXPECT_LT(c, 8);  // 3-bit codes
  EXPECT_EQ(ct.ctx.wire_bits, 200u * 3 + 32);
}

TEST(LpcSvrg, GridValuesOnly) {
  auto q = compressors::make_lpcsvrg(4);
  Rng rng(1);
  Tensor grad = random_grad(3, 100);
  auto ct = q->compress(grad, "t", rng);
  const float delta = ct.ctx.scalars.at(0);
  Tensor restored = q->decompress(ct);
  for (float v : restored.f32()) {
    const float cells = v / delta;
    EXPECT_NEAR(cells, std::round(cells), 1e-3f);
  }
}

TEST(Wangni, Unbiased) {
  auto q = compressors::make_wangni(0.3);
  expect_unbiased(*q, 0.5);  // high variance by design at coarse budgets
}

TEST(Wangni, BudgetControlsExpectedSize) {
  auto q = compressors::make_wangni(0.1);
  Rng rng(7);
  Tensor grad = random_grad(4, 2000);
  double kept = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    kept += static_cast<double>(q->compress(grad, "t", rng).parts[1].numel());
  }
  // Expected selections <= budget (probabilities saturate at 1 for heavy
  // coordinates, so the realized count can undershoot but not exceed much).
  EXPECT_NEAR(kept / trials, 200.0, 80.0);
}

TEST(Wangni, KeptValuesAreRescaled) {
  auto q = compressors::make_wangni(0.5);
  Rng rng(9);
  Tensor grad = random_grad(5, 100);
  auto ct = q->compress(grad, "t", rng);
  auto values = ct.parts[0].f32();
  auto idx = ct.parts[1].i32();
  for (size_t i = 0; i < idx.size(); ++i) {
    const float orig = grad.f32()[static_cast<size_t>(idx[i])];
    // value = orig / p with p <= 1 -> magnitude never shrinks.
    EXPECT_GE(std::fabs(values[i]), std::fabs(orig) - 1e-5f);
    EXPECT_EQ(values[i] >= 0.0f, orig >= 0.0f);
  }
}

TEST(ThreeLc, TernaryOutput) {
  auto q = compressors::make_threelc(1.0);
  Rng rng(1);
  Tensor grad = random_grad(6, 300);
  auto ct = q->compress(grad, "t", rng);
  const float m = ct.ctx.scalars.at(0);
  Tensor restored = q->decompress(ct);
  for (float v : restored.f32()) {
    EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - m) < 1e-5f);
  }
}

TEST(ThreeLc, FiveDigitsPerByte) {
  auto q = compressors::make_threelc(1.0);
  Rng rng(2);
  Tensor grad = random_grad(7, 1000);
  auto ct = q->compress(grad, "t", rng);
  // Without runs: ceil(1000/5) = 200 bytes; with runs, fewer.
  EXPECT_LE(ct.parts[0].size_bytes(), 200u);
}

TEST(ThreeLc, ZeroRunsCompress) {
  auto q = compressors::make_threelc(1.0);
  Rng rng(3);
  // Mostly-zero gradient: long zero runs must shrink the payload well
  // below the dense 1-byte-per-5 packing.
  Tensor grad = Tensor::zeros(Shape{{1000}});
  grad.f32()[0] = 1.0f;
  grad.f32()[999] = -1.0f;
  auto ct = q->compress(grad, "t", rng);
  EXPECT_LT(ct.parts[0].size_bytes(), 40u);
  Tensor restored = q->decompress(ct);
  EXPECT_GT(restored.f32()[0], 0.0f);
  EXPECT_LT(restored.f32()[999], 0.0f);
  EXPECT_EQ(ops::count_nonzero(restored.f32()), 2);
}

TEST(ThreeLc, SparsityMultiplierShrinksSelection) {
  Rng rng(4);
  Tensor grad = random_grad(8, 2000);
  auto q1 = compressors::make_threelc(1.0);
  auto q2 = compressors::make_threelc(1.9);
  const auto n1 = ops::count_nonzero(q1->decompress(q1->compress(grad, "t", rng)).f32());
  const auto n2 = ops::count_nonzero(q2->decompress(q2->compress(grad, "t", rng)).f32());
  EXPECT_LT(n2, n1);  // larger s => larger M => more values round to 0
}

TEST(SketchedSgd, RecoversHeavyHitters) {
  auto q = compressors::make_sketchedsgd(5, 0.2, 0.02);
  Rng rng(1);
  Tensor grad(DType::F32, Shape{{500}});
  rng.fill_normal(grad.f32(), 0.0f, 0.05f);  // light noise floor
  grad.f32()[17] = 5.0f;   // heavy hitters
  grad.f32()[230] = -4.0f;
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  EXPECT_NEAR(restored.f32()[17], 5.0f, 0.5f);
  EXPECT_NEAR(restored.f32()[230], -4.0f, 0.5f);
}

TEST(SketchedSgd, WireSizeIndependentOfContent) {
  auto q = compressors::make_sketchedsgd(5, 0.1, 0.01);
  Rng rng(2);
  Tensor sparse = Tensor::zeros(Shape{{1000}});
  sparse.f32()[3] = 1.0f;
  Tensor dense = random_grad(9, 1000);
  const auto a = q->compress(sparse, "t", rng).ctx.wire_bits;
  const auto b = q->compress(dense, "t", rng).ctx.wire_bits;
  EXPECT_EQ(a, b);
}

TEST(SketchedSgd, SeedTravelsInContext) {
  auto q = compressors::make_sketchedsgd(5, 0.2, 0.05);
  Rng rng(3);
  Tensor grad = random_grad(10, 400);
  auto ct = q->compress(grad, "some.tensor", rng);
  // A different compressor instance (another worker) decompresses the
  // serialized payload identically.
  auto peer = compressors::make_sketchedsgd(5, 0.2, 0.05);
  Tensor a = q->decompress(ct);
  Tensor b = peer->decompress(deserialize(serialize(ct)));
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.f32()[static_cast<size_t>(i)], b.f32()[static_cast<size_t>(i)]);
  }
}

TEST(Atomo, ExactOnRankOneMatrix) {
  // A rank-1 gradient with budget >= 1 is reconstructed (almost) exactly.
  auto q = compressors::make_atomo(2, 4.0);
  Rng rng(1);
  Tensor grad(DType::F32, Shape{{12, 8}});
  std::vector<float> u(12), v(8);
  rng.fill_normal(u, 0.0f, 1.0f);
  rng.fill_normal(v, 0.0f, 1.0f);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      grad.f32()[static_cast<size_t>(i * 8 + j)] = u[static_cast<size_t>(i)] * v[static_cast<size_t>(j)];
    }
  }
  Tensor restored = q->decompress(q->compress(grad, "t", rng));
  Tensor diff = restored;
  ops::sub(diff.f32(), grad.f32());
  EXPECT_LT(ops::l2_norm(diff.f32()), 0.05f * ops::l2_norm(grad.f32()));
}

TEST(Atomo, WireSizeMatchesKeptAtoms) {
  auto q = compressors::make_atomo(3, 10.0);  // budget high => keep all
  Rng rng(2);
  Tensor grad = random_grad(11, 20 * 10).reshaped(Shape{{20, 10}});
  auto ct = q->compress(grad, "t", rng);
  const auto kept = ct.parts[0].numel();
  EXPECT_EQ(ct.ctx.wire_bits,
            static_cast<uint64_t>(kept) * (20 + 10 + 1) * 32);
}

TEST(QsparseLocal, QuantizedSparseRoundTrip) {
  auto q = compressors::make_qsparselocal(0.1, 8);
  Rng rng(1);
  Tensor grad = random_grad(12, 500);
  auto ct = q->compress(grad, "t", rng);
  EXPECT_EQ(ct.parts[1].numel(), 50);  // k indices
  Tensor restored = q->decompress(ct);
  EXPECT_EQ(ops::count_nonzero(restored.f32()), 50);
  // Selected values survive up to 8-bit quantization error.
  const float scale = ct.ctx.scalars.at(0);
  for (int32_t i : ct.parts[1].i32()) {
    EXPECT_NEAR(restored.f32()[static_cast<size_t>(i)],
                grad.f32()[static_cast<size_t>(i)], 2.0f * scale / 255.0f + 1e-5f);
  }
}

TEST(QsparseLocal, FewerBitsSmallerWire) {
  Rng rng(2);
  Tensor grad = random_grad(13, 1000);
  auto q8 = compressors::make_qsparselocal(0.1, 8);
  auto q2 = compressors::make_qsparselocal(0.1, 2);
  EXPECT_LT(q2->compress(grad, "t", rng).ctx.wire_bits,
            q8->compress(grad, "t", rng).ctx.wire_bits);
}

TEST(Extensions, AllReachableViaSpecs) {
  Rng rng(1);
  Tensor grad = random_grad(14, 128);
  for (const auto& name : extension_names()) {
    auto q = make_compressor(name);
    Tensor restored = q->decompress(q->compress(grad, "t", rng));
    EXPECT_EQ(restored.shape(), grad.shape()) << name;
  }
}

TEST(Extensions, UserRegistrationAndOverrideProtection) {
  EXPECT_THROW(register_compressor("topk", nullptr), std::invalid_argument);
  EXPECT_THROW(register_compressor("atomo", nullptr), std::invalid_argument);
  register_compressor("testonly", [](const CompressorSpec& s) {
    return compressors::make_topk(s.args.empty() ? 0.5 : s.args[0]);
  });
  auto q = make_compressor("testonly(0.25)");
  EXPECT_EQ(q->info().name, "topk");
  bool found = false;
  for (const auto& n : extension_names()) found = found || n == "testonly";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace grace::core

// ---- Table-I completion methods (varbased / gradiveq / gradzip) --------

namespace grace::core {
namespace {

TEST(VarBased, NoiseCoordinatesAreDelayed) {
  auto q = compressors::make_varbased(1.0);
  Rng rng(1);
  // Coordinate 0: strong consistent signal; others: zero-mean noise.
  double shipped_signal = 0.0, shipped_noise = 0.0;
  for (int it = 0; it < 30; ++it) {
    Tensor g(DType::F32, Shape{{50}});
    rng.fill_normal(g.f32(), 0.0f, 1.0f);
    g.f32()[0] = 3.0f;
    Tensor restored = q->decompress(q->compress(g, "t", rng));
    shipped_signal += std::fabs(restored.f32()[0]);
    for (int64_t i = 1; i < 50; ++i) shipped_noise += std::fabs(restored.f32()[static_cast<size_t>(i)]);
  }
  // The signal coordinate ships nearly every round; per-noise-coordinate
  // mass is a small fraction of it.
  EXPECT_GT(shipped_signal, 50.0);
  EXPECT_LT(shipped_noise / 49.0, shipped_signal / 4.0);
}

TEST(VarBased, AccumulatorPreservesMass) {
  // Even delayed coordinates eventually ship their accumulated sum.
  auto q = compressors::make_varbased(0.0);  // lambda 0: everything ships
  Rng rng(2);
  Tensor g = Tensor::full(Shape{{8}}, 0.5f);
  Tensor total = Tensor::zeros(Shape{{8}});
  for (int it = 0; it < 10; ++it) {
    ops::add(total.f32(), q->decompress(q->compress(g, "t", rng)).f32());
  }
  for (float v : total.f32()) EXPECT_NEAR(v, 5.0f, 0.01f);
}

TEST(GradiVeq, BasisShipsOnlyOnRefresh) {
  auto q = compressors::make_gradiveq(4, 5);
  Rng rng(3);
  Tensor g(DType::F32, Shape{{256}});
  rng.fill_normal(g.f32(), 0.0f, 1.0f);
  const auto first = q->compress(g, "t", rng).ctx.wire_bits;   // refresh
  const auto second = q->compress(g, "t", rng).ctx.wire_bits;  // cached basis
  EXPECT_GT(first, second);
  // Refresh period 5: calls 3..5 stay cheap; call 6 (iters=5) refreshes.
  for (int call = 3; call <= 5; ++call) {
    EXPECT_EQ(q->compress(g, "t", rng).ctx.wire_bits, second) << call;
  }
  EXPECT_EQ(q->compress(g, "t", rng).ctx.wire_bits, first);
}

TEST(GradiVeq, ProjectionErrorBounded) {
  auto q = compressors::make_gradiveq(8, 1);
  Rng rng(4);
  Tensor g(DType::F32, Shape{{512}});
  rng.fill_normal(g.f32(), 0.0f, 1.0f);
  Tensor restored = q->decompress(q->compress(g, "t", rng));
  Tensor diff = restored;
  ops::sub(diff.f32(), g.f32());
  // Orthogonal projection: error strictly below the input norm.
  EXPECT_LT(ops::l2_norm(diff.f32()), ops::l2_norm(g.f32()));
}

TEST(GradZip, FactorizationConvergesOnFixedMatrix) {
  auto q = compressors::make_gradzip(2, 1e-3);
  Rng rng(5);
  Tensor g(DType::F32, Shape{{16, 12}});
  rng.fill_normal(g.f32(), 0.0f, 1.0f);
  double first = -1.0, last = -1.0;
  for (int it = 0; it < 10; ++it) {
    Tensor restored = q->decompress(q->compress(g, "t", rng));
    Tensor diff = restored;
    ops::sub(diff.f32(), g.f32());
    last = ops::l2_norm(diff.f32());
    if (first < 0) first = last;
  }
  EXPECT_LE(last, first);
  EXPECT_LT(last, ops::l2_norm(g.f32()));  // better than sending nothing
}

TEST(GradZip, ExactOnLowRankInput) {
  auto q = compressors::make_gradzip(2, 1e-5);
  Rng rng(6);
  // Build an exactly rank-2 matrix.
  Tensor g = Tensor::zeros(Shape{{10, 8}});
  for (int comp = 0; comp < 2; ++comp) {
    std::vector<float> u(10), v(8);
    rng.fill_normal(u, 0.0f, 1.0f);
    rng.fill_normal(v, 0.0f, 1.0f);
    for (int64_t i = 0; i < 10; ++i) {
      for (int64_t j = 0; j < 8; ++j) {
        g.f32()[static_cast<size_t>(i * 8 + j)] += u[static_cast<size_t>(i)] * v[static_cast<size_t>(j)];
      }
    }
  }
  double err = 1e9;
  for (int it = 0; it < 12; ++it) {  // ALS warm start converges
    Tensor restored = q->decompress(q->compress(g, "t", rng));
    Tensor diff = restored;
    ops::sub(diff.f32(), g.f32());
    err = ops::l2_norm(diff.f32());
  }
  EXPECT_LT(err, 0.02f * ops::l2_norm(g.f32()));
}

TEST(GradZip, WireSizeFormula) {
  auto q = compressors::make_gradzip(3);
  Rng rng(7);
  Tensor g(DType::F32, Shape{{20, 10}});
  rng.fill_normal(g.f32(), 0.0f, 1.0f);
  EXPECT_EQ(q->compress(g, "t", rng).ctx.wire_bits,
            static_cast<uint64_t>((20 + 10) * 3) * 32);
}

}  // namespace
}  // namespace grace::core
