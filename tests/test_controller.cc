// Adaptive per-bucket compression controller (src/control, DESIGN.md §11):
// policy unit tests driven with synthetic signal windows, snapshot
// round-trips, and trainer-level determinism / resume / error-feedback
// carry-over contracts. Also covers the satellite APIs that ride along:
// the registry's unknown-spec error listing and the fidelity probe's
// totals / rolling-window accessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "control/controller.h"
#include "core/memory.h"
#include "core/registry.h"
#include "sim/fidelity.h"
#include "sim/tasks.h"
#include "tensor/ops.h"

namespace grace {
namespace {

using control::ControlConfig;
using control::ControlDecision;
using control::Controller;
using control::ResidualCarry;

// --- Satellite: registry error message -----------------------------------

TEST(Registry, UnknownSpecListsRegisteredNamesSorted) {
  std::string message;
  try {
    core::make_compressor("definitely_not_a_compressor");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("unknown compressor: definitely_not_a_compressor"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("registered:"), std::string::npos) << message;
  // Every registered name is present, and the listing is sorted.
  std::vector<std::string> names = core::registered_names();
  for (const std::string& n : names) {
    EXPECT_NE(message.find(n), std::string::npos) << n << " in " << message;
  }
  std::sort(names.begin(), names.end());
  size_t prev = 0;
  for (const std::string& n : names) {
    const size_t at = message.find(n, prev);
    ASSERT_NE(at, std::string::npos) << n;
    prev = at;
  }
}

// --- Satellite: fidelity probe totals + rolling window --------------------

core::FidelitySample sample(const char* name, double cosine, double sign,
                            double residual, double grad, uint64_t wire,
                            uint64_t dense) {
  core::FidelitySample s;
  s.rank = 0;
  s.tensor = name;
  s.numel = 8;
  s.cosine_similarity = cosine;
  s.sign_agreement = sign;
  s.residual_l2 = residual;
  s.grad_l2 = grad;
  s.wire_bits = wire;
  s.dense_bits = dense;
  s.compression_ratio =
      wire > 0 ? static_cast<double>(dense) / static_cast<double>(wire) : 0.0;
  return s;
}

TEST(FidelityProbe, TotalsAreMonotonicSums) {
  sim::CompressionFidelityProbe probe(1);
  probe.on_sample(sample("w", 0.9, 0.8, 1.0, 2.0, 32, 256));
  probe.on_sample(sample("w", 0.7, 0.6, 3.0, 4.0, 64, 256));
  const auto t = probe.totals(0, "w");
  EXPECT_EQ(t.samples, 2);
  EXPECT_DOUBLE_EQ(t.cosine_sum, 1.6);
  EXPECT_DOUBLE_EQ(t.sign_sum, 1.4);
  EXPECT_DOUBLE_EQ(t.residual_sum, 4.0);
  EXPECT_DOUBLE_EQ(t.grad_sum, 6.0);
  EXPECT_EQ(t.wire_bits, 96u);
  EXPECT_EQ(t.dense_bits, 512u);
  // Unknown tensor / never-sampled rank: zero totals, not a throw.
  EXPECT_EQ(probe.totals(0, "nope").samples, 0);
}

TEST(FidelityProbe, RollingWindowMeansLastK) {
  sim::CompressionFidelityProbe probe(1);
  for (int i = 0; i < 5; ++i) {
    probe.on_sample(sample("w", 0.1 * i, 0.2, 0.0, 1.0, 32, 256));
  }
  const auto last2 = probe.rolling(0, "w", 2);
  EXPECT_EQ(last2.samples, 2);
  EXPECT_DOUBLE_EQ(last2.cosine, (0.3 + 0.4) / 2.0);  // samples 3 and 4
  // Window larger than history clamps to what exists.
  const auto all = probe.rolling(0, "w", 100);
  EXPECT_EQ(all.samples, 5);
  EXPECT_DOUBLE_EQ(all.cosine, (0.0 + 0.1 + 0.2 + 0.3 + 0.4) / 5.0);
  // Empty probe: identity defaults.
  EXPECT_EQ(probe.rolling(0, "nope", 4).samples, 0);
  EXPECT_DOUBLE_EQ(probe.rolling(0, "nope", 4).cosine, 1.0);
}

TEST(FidelityProbe, RollingWindowSurvivesRingWraparound) {
  sim::CompressionFidelityProbe probe(1);
  const int total = sim::CompressionFidelityProbe::kRollingCapacity + 9;
  for (int i = 0; i < total; ++i) {
    probe.on_sample(sample("w", i, 0.5, 0.0, 1.0, 32, 256));
  }
  const auto last3 = probe.rolling(0, "w", 3);
  EXPECT_EQ(last3.samples, 3);
  const double want =
      (static_cast<double>(total - 1) + (total - 2) + (total - 3)) / 3.0;
  EXPECT_DOUBLE_EQ(last3.cosine, want);
  // Asking for more than the ring retains clamps to the ring capacity.
  const auto capped = probe.rolling(0, "w", total);
  EXPECT_EQ(capped.samples, sim::CompressionFidelityProbe::kRollingCapacity);
}

// --- Satellite: residual flush --------------------------------------------

TEST(ResidualMemory, ClearDropsOneTensorsResidual) {
  core::ResidualMemory mem(1.0f, 1.0f);
  Tensor grad = Tensor::from(std::vector<float>{2, 2, 2, 2});
  Tensor zero = Tensor::zeros({4});
  // update(phi, Q^-1): residual = phi - decompressed = grad.
  mem.update("w", mem.compensate(grad, "w"), zero);
  ASSERT_NE(mem.residual("w"), nullptr);
  mem.clear("w");
  EXPECT_EQ(mem.residual("w"), nullptr);
  // compensate after clear sees no residual: phi == grad.
  Tensor phi = mem.compensate(grad, "w");
  auto v = phi.f32();
  for (float x : v) EXPECT_EQ(x, 2.0f);
}

// --- Policy unit tests (synthetic signal windows) -------------------------

// One bucket's 7-float signal slice encoding a window with `n` samples at
// the given mean cosine / sign agreement and residual-to-gradient ratio.
std::vector<float> signals_1bucket(float n, float cosine, float sign,
                                   float residual_rel) {
  return {n,       cosine * n, sign * n, residual_rel * n,
          1.0f * n, 32.0f * n,  256.0f * n};
}

ControlConfig hysteresis_cfg() {
  ControlConfig cfg;
  cfg.policy = "hysteresis";
  cfg.arms = {"none", "topk(0.05)", "topk(0.01)"};
  cfg.start_arm = 1;
  cfg.cosine_floor = 0.85;
  cfg.sign_floor = 0.70;
  cfg.residual_ceiling = 4.0;
  cfg.band = 0.05;
  cfg.patience = 2;
  return cfg;
}

TEST(HysteresisPolicy, SustainedBreachStepsOneArmLighter) {
  Controller ctl(hysteresis_cfg(), {"bucket0"}, 42);
  const auto bad = signals_1bucket(8, 0.5f, 0.9f, 0.1f);
  // patience = 2: first breach waits, second switches 1 -> 0.
  EXPECT_TRUE(ctl.step(bad, 0, -1).empty());
  const auto switched = ctl.step(bad, 1, -1);
  ASSERT_EQ(switched.size(), 1u);
  EXPECT_EQ(switched[0].from_arm, 1);
  EXPECT_EQ(switched[0].to_arm, 0);
  EXPECT_EQ(switched[0].signal, "cosine<floor");
  EXPECT_EQ(ctl.arm(0), 0);
  // Already at the lightest arm: further breaches hold.
  EXPECT_TRUE(ctl.step(bad, 2, -1).empty());
  EXPECT_TRUE(ctl.step(bad, 3, -1).empty());
  EXPECT_EQ(ctl.arm(0), 0);
}

TEST(HysteresisPolicy, SustainedHeadroomStepsOneArmHeavier) {
  Controller ctl(hysteresis_cfg(), {"bucket0"}, 42);
  const auto good = signals_1bucket(8, 0.99f, 0.99f, 0.0f);
  EXPECT_TRUE(ctl.step(good, 0, -1).empty());
  const auto switched = ctl.step(good, 1, -1);
  ASSERT_EQ(switched.size(), 1u);
  EXPECT_EQ(switched[0].to_arm, 2);
  EXPECT_EQ(switched[0].signal, "headroom");
  // At the heaviest arm the streak can no longer promote.
  EXPECT_TRUE(ctl.step(good, 2, -1).empty());
  EXPECT_TRUE(ctl.step(good, 3, -1).empty());
  EXPECT_EQ(ctl.arm(0), 2);
}

TEST(HysteresisPolicy, InBandWindowResetsStreaksNoFlapping) {
  Controller ctl(hysteresis_cfg(), {"bucket0"}, 42);
  const auto bad = signals_1bucket(8, 0.5f, 0.9f, 0.1f);
  // Inside the hysteresis band: above the floor but under floor + band.
  const auto inband = signals_1bucket(8, 0.87f, 0.9f, 0.1f);
  EXPECT_TRUE(ctl.step(bad, 0, -1).empty());     // breach streak 1
  EXPECT_TRUE(ctl.step(inband, 1, -1).empty());  // resets the streak
  EXPECT_TRUE(ctl.step(bad, 2, -1).empty());     // breach streak 1 again
  EXPECT_EQ(ctl.arm(0), 1);                      // never switched
  EXPECT_EQ(ctl.decisions().back().signal, "cosine<floor:wait");
}

TEST(HysteresisPolicy, EmptyWindowHoldsEverything) {
  Controller ctl(hysteresis_cfg(), {"bucket0"}, 42);
  const auto bad = signals_1bucket(8, 0.5f, 0.9f, 0.1f);
  const auto idle = signals_1bucket(0, 0.0f, 0.0f, 0.0f);
  EXPECT_TRUE(ctl.step(bad, 0, -1).empty());
  // Idle windows neither advance nor reset the breach streak.
  EXPECT_TRUE(ctl.step(idle, 1, -1).empty());
  EXPECT_EQ(ctl.decisions().back().signal, "idle");
  const auto switched = ctl.step(bad, 2, -1);
  ASSERT_EQ(switched.size(), 1u);
  EXPECT_EQ(switched[0].to_arm, 0);
}

TEST(HysteresisPolicy, CheapBucketPinsToLightestArm) {
  ControlConfig cfg = hysteresis_cfg();
  cfg.start_arm = 2;
  cfg.cheap_bits = 1000.0;  // per-sample dense payload threshold
  Controller ctl(cfg, {"tiny", "big"}, 42);
  // Both buckets post comfortable windows; only "tiny" is under the
  // cheap-bits threshold (dense 256 bits/sample vs 2560).
  std::vector<float> sig;
  const float n = 8.0f;
  const auto tiny = std::vector<float>{n,        0.99f * n, 0.99f * n, 0.0f,
                                       1.0f * n, 32.0f * n, 256.0f * n};
  const auto big = std::vector<float>{n,        0.99f * n, 0.99f * n, 0.0f,
                                      1.0f * n, 320.0f * n, 2560.0f * n};
  sig.insert(sig.end(), tiny.begin(), tiny.end());
  sig.insert(sig.end(), big.begin(), big.end());
  const auto switched = ctl.step(sig, 0, -1);
  ASSERT_EQ(switched.size(), 1u);
  EXPECT_EQ(switched[0].bucket_name, "tiny");
  EXPECT_EQ(switched[0].to_arm, 0);
  EXPECT_EQ(switched[0].signal, "cheap");
  // The cheap bucket never promotes, however comfortable its windows; the
  // big bucket follows the ordinary hysteresis rules.
  ctl.step(sig, 1, -1);
  ctl.step(sig, 2, -1);
  EXPECT_EQ(ctl.arm(0), 0);
  EXPECT_EQ(ctl.decisions().back().bucket, 1);
}

TEST(FixedPolicy, NeverSwitches) {
  ControlConfig cfg;
  cfg.policy = "fixed";
  cfg.arms = {"none", "topk(0.01)"};
  cfg.start_arm = 1;
  Controller ctl(cfg, {"a", "b"}, 42);
  const auto bad = signals_1bucket(8, 0.0f, 0.0f, 99.0f);
  std::vector<float> two;
  two.insert(two.end(), bad.begin(), bad.end());
  two.insert(two.end(), bad.begin(), bad.end());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ctl.step(two, i, -1).empty());
  EXPECT_EQ(ctl.switches(), 0);
  EXPECT_EQ(ctl.boundaries(), 4);
  EXPECT_EQ(ctl.arm(0), 1);
  EXPECT_EQ(ctl.arm(1), 1);
}

TEST(ControllerStep, RejectsWrongSignalSize) {
  Controller ctl(hysteresis_cfg(), {"a", "b"}, 42);
  const auto one = signals_1bucket(8, 0.9f, 0.9f, 0.1f);
  EXPECT_THROW(ctl.step(one, 0, -1), std::invalid_argument);
}

// --- Seeded bandit ---------------------------------------------------------

ControlConfig bandit_cfg() {
  ControlConfig cfg;
  cfg.policy = "bandit";
  cfg.arms = {"none", "topk(0.05)", "topk(0.01)"};
  cfg.epsilon = 1.0;  // every post-bootstrap decision is an explore draw
  return cfg;
}

// Windows whose reward depends on the arm currently played, so bandit
// statistics evolve with the decision sequence.
std::vector<float> bandit_window(const Controller& ctl) {
  const float cos = ctl.arm(0) == 0 ? 0.99f : 0.80f;
  return signals_1bucket(8, cos, 0.9f, 0.1f);
}

TEST(SeededBandit, SameSeedReplaysBitIdentically) {
  Controller a(bandit_cfg(), {"bucket0"}, 1234);
  Controller b(bandit_cfg(), {"bucket0"}, 1234);
  for (int i = 0; i < 32; ++i) {
    a.step(bandit_window(a), i, -1);
    b.step(bandit_window(b), i, -1);
  }
  EXPECT_EQ(control::control_decisions_json(a.decisions()),
            control::control_decisions_json(b.decisions()));
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(SeededBandit, DifferentSeedsDiverge) {
  Controller a(bandit_cfg(), {"bucket0"}, 1);
  Controller b(bandit_cfg(), {"bucket0"}, 2);
  for (int i = 0; i < 32; ++i) {
    a.step(bandit_window(a), i, -1);
    b.step(bandit_window(b), i, -1);
  }
  EXPECT_NE(control::control_decisions_json(a.decisions()),
            control::control_decisions_json(b.decisions()));
}

TEST(SeededBandit, UcbDrawsNoRandomness) {
  ControlConfig cfg = bandit_cfg();
  cfg.ucb_c = 1.0;
  Controller ctl(cfg, {"bucket0"}, 42);
  for (int i = 0; i < 8; ++i) ctl.step(bandit_window(ctl), i, -1);
  EXPECT_NE(ctl.snapshot().find(";draws=0;"), std::string::npos);
}

TEST(SeededBandit, SnapshotRoundTripsMidSequence) {
  // Split one 24-boundary run at boundary 10: a controller restored from
  // the snapshot (same seed) must replay the tail exactly, including the
  // RNG position.
  Controller full(bandit_cfg(), {"bucket0"}, 777);
  for (int i = 0; i < 10; ++i) full.step(bandit_window(full), i, -1);
  const std::string snap = full.snapshot();

  ControlConfig resumed_cfg = bandit_cfg();
  resumed_cfg.resume_state = snap;
  Controller resumed(resumed_cfg, {"bucket0"}, 777);
  EXPECT_EQ(resumed.boundaries(), 10);
  EXPECT_EQ(resumed.arm(0), full.arm(0));

  for (int i = 10; i < 24; ++i) {
    full.step(bandit_window(full), i, -1);
    resumed.step(bandit_window(resumed), i, -1);
  }
  EXPECT_EQ(resumed.snapshot(), full.snapshot());
  // The resumed log holds only the tail; it must equal the full log's tail.
  const auto& tail = resumed.decisions();
  const auto& all = full.decisions();
  ASSERT_EQ(all.size(), 24u);
  ASSERT_EQ(tail.size(), 14u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(control::control_decisions_json({tail[i]}),
              control::control_decisions_json({all[10 + i]}));
  }
}

TEST(ControllerSnapshot, RejectsCorruptOrMismatchedState) {
  Controller ctl(hysteresis_cfg(), {"bucket0"}, 42);
  ctl.step(signals_1bucket(8, 0.9f, 0.9f, 0.1f), 0, -1);
  const std::string snap = ctl.snapshot();

  auto resume_with = [](ControlConfig cfg, const std::string& state,
                        std::vector<std::string> names) {
    cfg.resume_state = state;
    Controller c(cfg, std::move(names), 42);
  };
  // Bad magic.
  EXPECT_THROW(resume_with(hysteresis_cfg(), "garbage", {"bucket0"}),
               std::invalid_argument);
  // Policy mismatch.
  ControlConfig bandit = bandit_cfg();
  EXPECT_THROW(resume_with(bandit, snap, {"bucket0"}), std::invalid_argument);
  // Bucket-plan mismatch.
  EXPECT_THROW(resume_with(hysteresis_cfg(), snap, {"other_bucket"}),
               std::invalid_argument);
  // Arm-set mismatch.
  ControlConfig fewer = hysteresis_cfg();
  fewer.arms = {"none", "topk(0.05)"};
  fewer.start_arm = 0;
  EXPECT_THROW(resume_with(fewer, snap, {"bucket0"}), std::invalid_argument);
  // Valid state restores cleanly.
  ControlConfig ok = hysteresis_cfg();
  ok.resume_state = snap;
  Controller resumed(ok, {"bucket0"}, 42);
  EXPECT_EQ(resumed.boundaries(), 1);
}

// --- Trainer integration ---------------------------------------------------

sim::Benchmark tiny_cnn() { return sim::make_cnn_classification(0.1); }

sim::TrainConfig controller_config(const sim::Benchmark& b, int workers) {
  sim::TrainConfig cfg = sim::default_config(b);
  cfg.n_workers = workers;
  cfg.net.n_workers = workers;
  cfg.epochs = 2;
  cfg.grace.compressor_spec = "topk(0.05)";
  cfg.grace.control.policy = "hysteresis";
  cfg.grace.control.arms = {"none", "topk(0.05)"};
  cfg.grace.control.start_arm = 1;
  cfg.grace.control.decide_every_iters = 2;
  return cfg;
}

TEST(TrainerControl, SameSeedYieldsByteIdenticalDecisionLogs) {
  sim::Benchmark b = tiny_cnn();
  sim::TrainConfig cfg = controller_config(b, 2);
  // Floors chosen so real top-k fidelity signals land on both sides.
  cfg.grace.control.cosine_floor = 0.4;
  sim::RunResult r1 = train(b.factory, cfg);
  sim::RunResult r2 = train(b.factory, cfg);
  EXPECT_TRUE(r1.control.enabled);
  EXPECT_GT(r1.control.boundaries, 0);
  EXPECT_FALSE(r1.control.decisions.empty());
  EXPECT_EQ(control::control_decisions_json(r1.control.decisions),
            control::control_decisions_json(r2.control.decisions));
  EXPECT_EQ(r1.control.state, r2.control.state);
  EXPECT_EQ(r1.parameters_crc32, r2.parameters_crc32);
  EXPECT_TRUE(r1.replicas_in_sync);
}

TEST(TrainerControl, BanditRunsAreSeedReproducible) {
  sim::Benchmark b = tiny_cnn();
  sim::TrainConfig cfg = controller_config(b, 2);
  cfg.grace.control.policy = "bandit";
  cfg.grace.control.epsilon = 0.5;
  sim::RunResult r1 = train(b.factory, cfg);
  sim::RunResult r2 = train(b.factory, cfg);
  EXPECT_EQ(control::control_decisions_json(r1.control.decisions),
            control::control_decisions_json(r2.control.decisions));
  EXPECT_EQ(r1.parameters_crc32, r2.parameters_crc32);
  EXPECT_TRUE(r1.replicas_in_sync);
}

TEST(TrainerControl, FixedPolicyMatchesUncontrolledRunBitForBit) {
  // The degenerate policy run through the whole controller machinery —
  // probe attach, per-bucket override routing, boundary allreduces — must
  // not perturb training at all.
  sim::Benchmark b = tiny_cnn();
  sim::TrainConfig plain = sim::default_config(b);
  plain.n_workers = 2;
  plain.net.n_workers = 2;
  plain.epochs = 2;
  plain.grace.compressor_spec = "topk(0.05)";
  sim::RunResult base = train(b.factory, plain);

  sim::TrainConfig ctl = plain;
  ctl.grace.control.policy = "fixed";
  ctl.grace.control.arms = {"topk(0.05)"};
  sim::RunResult run = train(b.factory, ctl);

  EXPECT_TRUE(run.control.enabled);
  EXPECT_EQ(run.control.switches, 0);
  EXPECT_EQ(run.final_parameters, base.final_parameters);
  EXPECT_EQ(run.parameters_crc32, base.parameters_crc32);
}

TEST(TrainerControl, ResidualCarryAbsorbAndFlushBothDeterministic) {
  // Force a switch at the very first boundary (impossible cosine floor)
  // with error feedback on, so a residual is pending when the arm changes:
  // Absorb keeps it, Flush drops it, and the two trajectories split.
  sim::Benchmark b = tiny_cnn();
  auto make = [&](ResidualCarry carry) {
    sim::TrainConfig cfg = controller_config(b, 2);
    cfg.grace.error_feedback = true;
    cfg.grace.control.cosine_floor = 0.999;
    cfg.grace.control.patience = 1;
    cfg.grace.control.residual_carry = carry;
    return cfg;
  };
  sim::RunResult absorb1 = train(b.factory, make(ResidualCarry::Absorb));
  sim::RunResult absorb2 = train(b.factory, make(ResidualCarry::Absorb));
  sim::RunResult flush1 = train(b.factory, make(ResidualCarry::Flush));
  sim::RunResult flush2 = train(b.factory, make(ResidualCarry::Flush));
  ASSERT_GT(absorb1.control.switches, 0);
  ASSERT_GT(flush1.control.switches, 0);
  EXPECT_EQ(absorb1.parameters_crc32, absorb2.parameters_crc32);
  EXPECT_EQ(flush1.parameters_crc32, flush2.parameters_crc32);
  EXPECT_NE(absorb1.parameters_crc32, flush1.parameters_crc32);
  EXPECT_TRUE(absorb1.replicas_in_sync);
  EXPECT_TRUE(flush1.replicas_in_sync);
}

TEST(TrainerControl, ResumeReplaysDecisionTailAndWeightsExactly) {
  // The crash-rebind hand-off contract: a run resumed at an epoch boundary
  // from (weights, controller state) must replay the original run's
  // decision tail and final weights bit-for-bit. Error feedback stays off —
  // a resumed worker starts with empty residuals, so EF state is not part
  // of the hand-off contract (same as the resilience hand-off tests).
  sim::Benchmark b = tiny_cnn();
  sim::TrainConfig cfg = controller_config(b, 2);
  cfg.grace.error_feedback = false;
  // Stateless SGD: a momentum buffer is not part of the (weights,
  // controller state) hand-off and would break the exact equivalence.
  cfg.optimizer.type = optim::OptimizerType::Sgd;
  cfg.optimizer.lr = 0.02;
  cfg.epochs = 4;
  cfg.grace.control.cosine_floor = 0.4;
  sim::RunResult full = train(b.factory, cfg);

  sim::TrainConfig stage_cfg = cfg;
  stage_cfg.epochs = 2;
  sim::RunResult stage = train(b.factory, stage_cfg);

  std::vector<float> saved = stage.final_parameters;
  sim::ReplicaFactory resumed_factory = [&b, saved](uint64_t seed) {
    auto model = b.factory(seed);
    size_t at = 0;
    for (auto& p : model->module().parameters()) {
      auto v = p.value->data.f32();
      std::copy_n(saved.begin() + static_cast<int64_t>(at), v.size(),
                  v.begin());
      at += v.size();
    }
    return model;
  };
  sim::TrainConfig resume_cfg = cfg;
  resume_cfg.epochs = 2;
  resume_cfg.start_epoch = 2;
  resume_cfg.grace.control.resume_state = stage.control.state;
  sim::RunResult cont = train(resumed_factory, resume_cfg);

  EXPECT_EQ(cont.parameters_crc32, full.parameters_crc32);
  EXPECT_EQ(cont.final_parameters, full.final_parameters);
  EXPECT_EQ(cont.control.state, full.control.state);

  // Decision tail: the resumed log is exactly the full log's entries from
  // the hand-off boundary on, labels included.
  const int cut = stage.control.boundaries;
  std::vector<ControlDecision> tail;
  for (const ControlDecision& d : full.control.decisions) {
    if (d.boundary >= cut) tail.push_back(d);
  }
  EXPECT_EQ(control::control_decisions_json(cont.control.decisions),
            control::control_decisions_json(tail));
}

}  // namespace
}  // namespace grace
