// Critical-path attribution (sim/critical_path.h): hand-built chain walks
// against the scheduler's tie semantics, what-if re-pricing identities,
// and — the headline acceptance test — the honesty contract over real
// training runs: per-iteration attributed seconds sum bitwise-exactly to
// RunResult::iteration_s across compressors x topologies x fault plans,
// under both accounting modes.
#include <gtest/gtest.h>

#include <vector>

#include "comm/topology.h"
#include "faults/fault_plan.h"
#include "json_checker.h"
#include "sim/critical_path.h"
#include "sim/tasks.h"

namespace grace::sim {
namespace {

Benchmark tiny_cnn() { return make_cnn_classification(0.1); }

TrainConfig tiny_config(const Benchmark& b, int workers = 4) {
  TrainConfig cfg = default_config(b);
  cfg.n_workers = workers;
  cfg.net.n_workers = workers;
  cfg.epochs = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Unit: attribute_iteration on hand-built timelines. Stage durations are
// dyadic rationals so every intermediate sum is exact and the expected
// category charges can be asserted bitwise, residue-free.

TEST(CriticalPath, AdditiveAttributionIsThePhaseLedger) {
  IterationCosts costs;
  costs.compute_s = 0.375;
  costs.codec_s = 0.25;
  costs.comm_s = 0.75;
  costs.optimizer_s = 0.0625;
  costs.stall_s = 0.03125;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/false);
  EXPECT_EQ(a.compute_s, costs.compute_s);
  EXPECT_EQ(a.codec_s, costs.codec_s);
  EXPECT_EQ(a.link_s, costs.comm_s);
  EXPECT_EQ(a.optimizer_s, costs.optimizer_s);
  EXPECT_EQ(a.stall_s, costs.stall_s);
  EXPECT_EQ(a.iteration_s, 0.375 + 0.25 + 0.75 + 0.0625 + 0.03125);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
  EXPECT_EQ(a.binding, Resource::Link);
}

TEST(CriticalPath, OverlapLinkBoundChain) {
  // One bucket, comm dominates: the chain is ramp -> compress -> link ->
  // decompress with no idle gaps, so every segment lands in its own
  // category exactly.
  const std::vector<BucketTiming> t = {{0.5, 0.25, 2.0, 0.125}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 1.0;  // pipeline (2.875) outlasts compute
  costs.optimizer_s = 0.0625;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/true);
  EXPECT_EQ(a.compute_s, 0.5);    // the readiness ramp gating the bucket
  EXPECT_EQ(a.codec_s, 0.375);    // compress + decompress
  EXPECT_EQ(a.link_s, 2.0);
  EXPECT_EQ(a.optimizer_s, 0.0625);
  EXPECT_EQ(a.iteration_s, 2.875 + 0.0625);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
  EXPECT_EQ(a.binding, Resource::Link);
}

TEST(CriticalPath, OverlapComputeBoundIterationChargesCompute) {
  // The exchange pipeline (end 1.5) hides entirely under compute (10.0):
  // the whole pipe is compute's, no codec/link charges.
  const std::vector<BucketTiming> t = {{0.5, 0.25, 0.5, 0.25}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 10.0;
  costs.optimizer_s = 0.25;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/true);
  EXPECT_EQ(a.compute_s, 10.0);
  EXPECT_EQ(a.codec_s, 0.0);
  EXPECT_EQ(a.link_s, 0.0);
  EXPECT_EQ(a.iteration_s, 10.25);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
  EXPECT_EQ(a.binding, Resource::Compute);
}

TEST(CriticalPath, OverlapCodecSerializationChain) {
  // Two buckets serialize on the codec-in resource: b1's compress waits on
  // b0's (not on the link), so the backward walk crosses buckets through
  // the Compress stage and charges both compress stages to Codec.
  //   b0: compress [0, 1],   comm [1, 1.25],  dec [1.25, 1.5]
  //   b1: compress [1, 2],   comm [2, 2.25],  dec [2.25, 2.5]
  const std::vector<BucketTiming> t = {{0.0, 1.0, 0.25, 0.25},
                                       {0.0, 1.0, 0.25, 0.25}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 0.5;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/true);
  EXPECT_EQ(a.compute_s, 0.0);   // b0 was ready at iteration start
  EXPECT_EQ(a.codec_s, 2.25);    // b0.compress + b1.compress + b1.dec
  EXPECT_EQ(a.link_s, 0.25);     // b1.comm
  EXPECT_EQ(a.iteration_s, 2.5);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
  EXPECT_EQ(a.binding, Resource::Codec);
}

TEST(CriticalPath, OverlapLinkSerializationChain) {
  // Two buckets serialize on the link: b1's comm waits for b0's comm to
  // drain, so the walk crosses buckets through the Comm stage and both
  // comm stages land in Link.
  //   b0: compress [0, 0.25],    comm [0.25, 1.25],  dec [1.25, 1.5]
  //   b1: compress [0.25, 0.5],  comm [1.25, 2.25],  dec [2.25, 2.5]
  const std::vector<BucketTiming> t = {{0.0, 0.25, 1.0, 0.25},
                                       {0.0, 0.25, 1.0, 0.25}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 0.5;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/true);
  EXPECT_EQ(a.compute_s, 0.0);
  EXPECT_EQ(a.codec_s, 0.5);   // b0.compress + b1.dec
  EXPECT_EQ(a.link_s, 2.0);    // both comm stages
  EXPECT_EQ(a.iteration_s, 2.5);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
  EXPECT_EQ(a.binding, Resource::Link);
}

TEST(CriticalPath, SkippedRoundIsComputePlusStall) {
  IterationCosts costs;
  costs.compute_s = 2.0;
  costs.stall_s = 0.5;
  costs.optimizer_s = 0.25;
  const IterationAttribution a = attribute_iteration(costs, /*overlap=*/true);
  EXPECT_EQ(a.compute_s, 2.0);
  EXPECT_EQ(a.codec_s, 0.0);
  EXPECT_EQ(a.link_s, 0.0);
  EXPECT_EQ(a.stall_s, 0.5);
  EXPECT_EQ(a.iteration_s, 2.75);
  EXPECT_EQ(a.attributed_total(), a.iteration_s);
}

// ---------------------------------------------------------------------------
// Unit: what-if re-pricing on the same hand-built timeline.

TEST(CriticalPath, WhatIfRepricesTheClosedFormTimeline) {
  const std::vector<BucketTiming> t = {{0.5, 0.25, 2.0, 0.125}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 1.0;
  costs.optimizer_s = 0.0625;
  costs.stall_s = 0.25;
  const std::vector<std::span<const BucketTiming>> ranks = {t};

  // Measured overlap iteration: pipe 2.875 + optimizer + stall.
  const double measured = 2.875 + 0.0625 + 0.25;

  // Infinite bandwidth: comm -> 0, pipe = max(compute, 0.5+0.25+0.125) =
  // compute; the compute floor binds.
  EXPECT_EQ(reprice_iteration(costs, ranks, true, Scenario::InfiniteBandwidth),
            1.0 + 0.0625 + 0.25);
  // Free codec: compress/dec -> 0, pipe = ramp + comm = 2.5.
  EXPECT_EQ(reprice_iteration(costs, ranks, true, Scenario::FreeCodec),
            2.5 + 0.0625 + 0.25);
  // Zero stall: same pipe, stall dropped.
  EXPECT_EQ(reprice_iteration(costs, ranks, true, Scenario::ZeroStall),
            2.875 + 0.0625);
  // Perfect overlap: ramp -> 0, pipe = max(compute, 0.25 + 2.0 + 0.125).
  EXPECT_EQ(reprice_iteration(costs, ranks, true, Scenario::PerfectOverlap),
            2.375 + 0.0625 + 0.25);

  for (Scenario s : kScenarios) {
    const double w = reprice_iteration(costs, ranks, true, s);
    // Never below the compute + optimizer bound, never above measured.
    EXPECT_GE(w, costs.compute_s + costs.optimizer_s) << scenario_name(s);
    EXPECT_LE(w, measured) << scenario_name(s);
  }
}

TEST(CriticalPath, WhatIfOnAdditiveRunsRepricesTheSum) {
  const std::vector<BucketTiming> t = {{0.5, 0.25, 2.0, 0.125}};
  IterationCosts costs;
  costs.timings = t;
  costs.compute_s = 1.0;
  costs.codec_s = 0.375;
  costs.comm_s = 2.0;
  costs.optimizer_s = 0.0625;
  costs.stall_s = 0.25;
  const std::vector<std::span<const BucketTiming>> ranks = {t};
  const double additive = ((((1.0 + 0.375) + 2.0) + 0.0625) + 0.25);

  // Scalar scenarios zero one term of the additive sum.
  EXPECT_EQ(reprice_iteration(costs, ranks, false, Scenario::InfiniteBandwidth),
            additive - 2.0);
  EXPECT_EQ(reprice_iteration(costs, ranks, false, Scenario::FreeCodec),
            additive - 0.375);
  EXPECT_EQ(reprice_iteration(costs, ranks, false, Scenario::ZeroStall),
            additive - 0.25);
  // Perfect overlap prices the pipeline instead — never more than the
  // additive sum, never less than compute + optimizer.
  const double po =
      reprice_iteration(costs, ranks, false, Scenario::PerfectOverlap);
  EXPECT_EQ(po, 2.375 + 0.0625 + 0.25);
  EXPECT_LE(po, additive);
  EXPECT_GE(po, costs.compute_s + costs.optimizer_s);
}

// ---------------------------------------------------------------------------
// Unit: the collector's per-rank, per-iteration storage.

TEST(CriticalPath, CollectorKeepsPerRankIterationSeries) {
  CriticalPathCollector c(2);
  const std::vector<BucketTiming> two = {{0.0, 1.0, 1.0, 1.0},
                                         {0.5, 1.0, 1.0, 1.0}};
  const std::vector<BucketTiming> one = {{0.25, 2.0, 3.0, 4.0}};
  c.record(0, two);
  c.record(0, {});  // skipped round
  c.record(0, one);
  c.record(1, one);
  EXPECT_EQ(c.n_ranks(), 2);
  EXPECT_EQ(c.iterations(0), 3);
  EXPECT_EQ(c.iterations(1), 1);
  ASSERT_EQ(c.timings(0, 0).size(), 2u);
  EXPECT_EQ(c.timings(0, 0)[1].ready_s, 0.5);
  EXPECT_TRUE(c.timings(0, 1).empty());
  ASSERT_EQ(c.timings(0, 2).size(), 1u);
  EXPECT_EQ(c.timings(0, 2)[0].decompress_s, 4.0);
  EXPECT_EQ(c.timings(1, 0).size(), 1u);
}

// ---------------------------------------------------------------------------
// Integration: the honesty contract over real training runs.

// Asserts the full contract on one finished run.
void expect_honest(const RunResult& run, const std::string& what) {
  SCOPED_TRACE(what);
  const CriticalPathSummary& cp = run.critical_path;
  ASSERT_TRUE(cp.collected);
  ASSERT_GT(cp.iterations, 0);
  ASSERT_EQ(static_cast<size_t>(cp.iterations), cp.per_iteration.size());

  // 1. Honesty: every iteration's ledger closes bitwise, and the mean
  //    ledger closes bitwise onto RunResult::iteration_s.
  for (size_t i = 0; i < cp.per_iteration.size(); ++i) {
    const IterationAttribution& a = cp.per_iteration[i];
    ASSERT_EQ(a.attributed_total(), a.iteration_s) << "iteration " << i;
    ASSERT_GE(a.iteration_s, 0.0);
  }
  EXPECT_EQ(cp.mean.attributed_total(), cp.mean.iteration_s);
  EXPECT_EQ(cp.mean.iteration_s, run.iteration_s);

  // 2. Binding tallies partition the iterations.
  int64_t bound_total = 0;
  for (int64_t n : cp.bound_iters) bound_total += n;
  EXPECT_EQ(bound_total, cp.iterations);

  // 3. What-ifs: one per scenario, in kScenarios order; re-pricing never
  //    falls below the compute + optimizer bound and (except the pipeline
  //    re-pricing of an additive run, which swaps accounting models) never
  //    exceeds the measured iteration.
  ASSERT_EQ(cp.what_ifs.size(), kScenarios.size());
  for (size_t i = 0; i < cp.what_ifs.size(); ++i) {
    const WhatIfResult& w = cp.what_ifs[i];
    EXPECT_EQ(w.name, scenario_name(kScenarios[i]));
    EXPECT_GT(w.iteration_s, 0.0) << w.name;
    EXPECT_GE(w.iteration_s, run.compute_s + run.optimizer_s - 1e-12)
        << w.name;
    const bool swaps_accounting =
        !run.overlap_enabled && kScenarios[i] == Scenario::PerfectOverlap;
    if (!swaps_accounting) {
      EXPECT_LE(w.iteration_s, run.iteration_s * (1.0 + 1e-9)) << w.name;
      EXPECT_GE(w.speedup, 1.0 - 1e-9) << w.name;
    }
    EXPECT_EQ(w.speedup, run.iteration_s / w.iteration_s) << w.name;
  }

  // 4. The JSON form parses and carries the summary's sections.
  const std::string json = critical_path_json(cp);
  testing::JsonChecker checker(json);
  EXPECT_TRUE(checker.parse()) << json;
  for (const char* key : {"collected", "iterations", "attribution",
                          "bound_iterations", "what_if", "binding"}) {
    EXPECT_TRUE(checker.keys().count(key)) << key;
  }
}

RunResult run_with_collector(const Benchmark& b, TrainConfig cfg) {
  CriticalPathCollector collector(cfg.n_workers);
  cfg.critical_path = &collector;
  return train(b.factory, cfg);
}

TEST(CriticalPathIntegration, HonestAcrossCompressorsAndAccountingModes) {
  Benchmark b = tiny_cnn();
  for (const char* spec : {"none", "topk(0.01)", "qsgd(64)"}) {
    for (bool overlap : {false, true}) {
      TrainConfig cfg = tiny_config(b);
      cfg.grace.compressor_spec = spec;
      cfg.time.overlap = overlap;
      const RunResult run = run_with_collector(b, cfg);
      EXPECT_EQ(run.overlap_enabled, overlap);
      expect_honest(run, std::string(spec) + (overlap ? "/overlap" : "/additive"));
    }
  }
}

TEST(CriticalPathIntegration, HonestAcrossTopologies) {
  Benchmark b = tiny_cnn();
  for (const bool overlap : {false, true}) {
    {
      TrainConfig cfg = tiny_config(b);
      cfg.grace.compressor_spec = "topk(0.01)";
      cfg.grace.topology.kind = comm::TopologyKind::ParameterServer;
      cfg.grace.topology.ps_shards = 2;
      cfg.time.overlap = overlap;
      expect_honest(run_with_collector(b, cfg),
                    overlap ? "ps/overlap" : "ps/additive");
    }
    {
      TrainConfig cfg = tiny_config(b);
      cfg.grace.compressor_spec = "topk(0.01)";
      cfg.grace.topology.kind = comm::TopologyKind::Hierarchical;
      cfg.grace.topology.ranks_per_rack = 2;
      cfg.time.overlap = overlap;
      expect_honest(run_with_collector(b, cfg),
                    overlap ? "hier/overlap" : "hier/additive");
    }
  }
}

TEST(CriticalPathIntegration, HonestUnderFaults) {
  Benchmark b = tiny_cnn();
  faults::FaultSpec spec;
  spec.seed = 11;
  spec.drop_prob = 0.05;
  spec.straggler_prob = 1.0;
  spec.straggler_rank = 1;
  spec.straggler_delay_s = 5e-3;
  const faults::FaultPlan plan(spec);
  for (const bool overlap : {false, true}) {
    TrainConfig cfg = tiny_config(b);
    cfg.grace.compressor_spec = "topk(0.01)";
    cfg.faults = &plan;
    cfg.time.overlap = overlap;
    const RunResult run = run_with_collector(b, cfg);
    EXPECT_GT(run.faults.straggler_events, 0u);
    expect_honest(run, overlap ? "faults/overlap" : "faults/additive");
    // A permanent straggler must show up in the ledger.
    EXPECT_GT(run.critical_path.mean.stall_s, 0.0);
  }
}

TEST(CriticalPathIntegration, HonestAcrossACrash) {
  // Rank 2 dies mid-run; the survivors' iterations must still close the
  // ledger (the binding-rank scan skips dead ranks).
  Benchmark b = tiny_cnn();
  faults::FaultSpec spec;
  spec.crash_rank = 2;
  spec.crash_epoch = 0;
  spec.crash_iter = 2;
  const faults::FaultPlan plan(spec);
  for (const bool overlap : {false, true}) {
    TrainConfig cfg = tiny_config(b);
    cfg.epochs = 2;
    cfg.faults = &plan;
    cfg.time.overlap = overlap;
    const RunResult run = run_with_collector(b, cfg);
    EXPECT_EQ(run.faults.crashed_ranks, 1u);
    expect_honest(run, overlap ? "crash/overlap" : "crash/additive");
  }
}

TEST(CriticalPathIntegration, StallBoundIterationsUnderPermanentStraggler) {
  // With a 50 ms straggler on every iteration of a sub-millisecond task,
  // the stall category must bind every iteration and the zero-stall
  // what-if must predict a large win.
  Benchmark b = tiny_cnn();
  faults::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_rank = 1;
  spec.straggler_delay_s = 0.05;
  const faults::FaultPlan plan(spec);
  TrainConfig cfg = tiny_config(b);
  cfg.faults = &plan;
  const RunResult run = run_with_collector(b, cfg);
  expect_honest(run, "big-straggler");
  const CriticalPathSummary& cp = run.critical_path;
  EXPECT_EQ(cp.mean.binding, Resource::Stall);
  EXPECT_EQ(cp.bound_iters[static_cast<size_t>(Resource::Stall)],
            cp.iterations);
  const WhatIfResult& zero_stall =
      cp.what_ifs[static_cast<size_t>(Scenario::ZeroStall)];
  EXPECT_GT(zero_stall.speedup, 2.0);
}

}  // namespace
}  // namespace grace::sim
