// Shared strict JSON validator for tests: enough JSON to check that the
// emitted documents (run_result_json, trace_events_json, trace_chrome_json,
// the BENCH_*.json wrappers) parse, and to walk their keys. Deliberately
// strict — no trailing commas, no comments, no unconsumed suffix.
#pragma once

#include <cctype>
#include <set>
#include <string>

namespace grace::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == s_.size();
  }

  // Every object key seen anywhere in the document.
  const std::set<std::string>& keys() const { return keys_; }

 private:
  bool value() {
    if (at_ >= s_.size()) return false;
    const char c = s_[at_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit(nullptr);
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string_lit(&key)) return false;
      keys_.insert(key);
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }

  bool array() {
    ++at_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool string_lit(std::string* out) {
    if (!expect('"')) return false;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') {
        ++at_;
        if (at_ >= s_.size()) return false;
      }
      if (out) out->push_back(s_[at_]);
      ++at_;
    }
    return expect('"');
  }

  bool number() {
    const size_t start = at_;
    if (at_ < s_.size() && (s_[at_] == '-' || s_[at_] == '+')) ++at_;
    bool digits = false;
    auto run = [&] {
      while (at_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[at_]))) {
        ++at_;
        digits = true;
      }
    };
    run();
    if (at_ < s_.size() && s_[at_] == '.') { ++at_; run(); }
    if (digits && at_ < s_.size() && (s_[at_] == 'e' || s_[at_] == 'E')) {
      ++at_;
      if (at_ < s_.size() && (s_[at_] == '-' || s_[at_] == '+')) ++at_;
      const bool before = digits;
      digits = false;
      run();
      digits = digits && before;
    }
    return digits && at_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (at_ >= s_.size() || s_[at_] != *p) return false;
      ++at_;
    }
    return true;
  }

  void skip_ws() {
    while (at_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[at_]))) {
      ++at_;
    }
  }
  bool peek(char c) {
    if (at_ < s_.size() && s_[at_] == c) { ++at_; return true; }
    return false;
  }
  bool expect(char c) {
    if (at_ < s_.size() && s_[at_] == c) { ++at_; return true; }
    return false;
  }

  const std::string& s_;
  size_t at_ = 0;
  std::set<std::string> keys_;
};

}  // namespace grace::testing
