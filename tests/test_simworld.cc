// Large-scale simulated worlds (sim/simworld.h): exact transport-count
// equivalence with the thread-backed trainer on small worlds, fleet-scale
// smoke coverage, and the JSON export.
#include <gtest/gtest.h>

#include <stdexcept>

#include "comm/topology.h"
#include "json_checker.h"
#include "sim/simworld.h"
#include "sim/tasks.h"
#include "sim/trainer.h"

namespace grace::sim {
namespace {

TrainConfig small_config(const Benchmark& b, int n) {
  TrainConfig cfg = default_config(b);
  cfg.n_workers = n;
  cfg.net.n_workers = n;  // price and count the same world we run
  cfg.epochs = 2;
  return cfg;
}

// The acceptance bar for the simulated world: for a world small enough to
// run both modes, the closed-form message/byte totals must equal the
// thread-backed World's atomic counters EXACTLY — same config, every
// topology, dense and sparse payloads. Any drift here means the cost model
// is pricing traffic the transport never carries (or missing some).
TEST(SimWorld, TransportTotalsMatchThreadWorldExactly) {
  Benchmark b = make_cnn_classification(0.1);
  struct Case {
    comm::TopologyKind kind;
    int ps_shards;
    int ranks_per_rack;
  };
  const Case cases[] = {
      {comm::TopologyKind::Ring, 1, 8},
      {comm::TopologyKind::ParameterServer, 2, 8},
      {comm::TopologyKind::Hierarchical, 1, 2},
  };
  for (const char* spec : {"none", "topk(0.1)"}) {
    for (const Case& c : cases) {
      TrainConfig cfg = small_config(b, 4);
      cfg.grace.compressor_spec = spec;
      cfg.grace.topology.kind = c.kind;
      cfg.grace.topology.ps_shards = c.ps_shards;
      cfg.grace.topology.ranks_per_rack = c.ranks_per_rack;

      RunResult real = train(b.factory, cfg);
      ScaleResult sim = simulate_scale(b.factory, cfg);

      SCOPED_TRACE(std::string(spec) + " / " + sim.topology);
      EXPECT_EQ(sim.comm_messages, real.comm_messages);
      EXPECT_EQ(sim.comm_payload_bytes, real.comm_payload_bytes);
      // The schedules must agree too, or the totals match by accident.
      EXPECT_EQ(sim.buckets_per_iter, real.buckets_per_iter);
      EXPECT_EQ(sim.epochs * sim.iters_per_epoch,
                static_cast<int64_t>(real.epochs.size()) *
                    (real.samples_per_epoch /
                     (cfg.n_workers * cfg.batch_per_worker)));
      EXPECT_EQ(sim.topology, real.topology);
    }
  }
}

TEST(SimWorld, RaggedHierarchyStaysExact) {
  // 5 ranks over rack size 2: one full rack short — the raggedest shape the
  // two-level collectives support.
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = small_config(b, 5);
  cfg.grace.compressor_spec = "topk(0.25)";
  cfg.grace.topology.kind = comm::TopologyKind::Hierarchical;
  cfg.grace.topology.ranks_per_rack = 2;
  RunResult real = train(b.factory, cfg);
  ScaleResult sim = simulate_scale(b.factory, cfg);
  EXPECT_EQ(sim.comm_messages, real.comm_messages);
  EXPECT_EQ(sim.comm_payload_bytes, real.comm_payload_bytes);
}

TEST(SimWorld, MixedFleetKeepsTransportTotalsExact) {
  // Heterogeneous 5-rank fleet over the ragged two-rack hierarchy: link
  // and compute multipliers reprice seconds, but the wire-volume closed
  // forms are speed-independent — transport totals must still equal the
  // thread-backed World's counters exactly.
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = small_config(b, 5);
  cfg.grace.compressor_spec = "topk(0.25)";
  cfg.grace.topology.kind = comm::TopologyKind::Hierarchical;
  cfg.grace.topology.ranks_per_rack = 2;
  std::vector<comm::LinkProfile> lp(5);
  lp[1].bandwidth_scale = 0.5;  // one throttled link
  lp[3].compute_scale = 3.0;    // one straggling device
  lp[4].latency_scale = 5.0;    // one long-haul member
  cfg.fleet = comm::FleetProfile(std::move(lp), "mixed-rack");
  ASSERT_FALSE(cfg.fleet.uniform());

  RunResult real = train(b.factory, cfg);
  ScaleResult sim = simulate_scale(b.factory, cfg);
  EXPECT_EQ(sim.comm_messages, real.comm_messages);
  EXPECT_EQ(sim.comm_payload_bytes, real.comm_payload_bytes);
  EXPECT_EQ(sim.fleet, "mixed-rack");
  EXPECT_EQ(sim.fleet_max_compute_scale, 3.0);

  // Straggler pricing: the same config with a uniform fleet must simulate
  // a faster iteration (and identical transport totals, again).
  TrainConfig uni = cfg;
  uni.fleet = comm::FleetProfile();
  ScaleResult fast = simulate_scale(b.factory, uni);
  EXPECT_GT(sim.iteration_s, fast.iteration_s);
  EXPECT_GT(sim.compute_s, fast.compute_s);
  EXPECT_EQ(sim.comm_messages, fast.comm_messages);
  EXPECT_EQ(sim.comm_payload_bytes, fast.comm_payload_bytes);
  EXPECT_EQ(sim.wire_bytes_per_iter, fast.wire_bytes_per_iter);
}

TEST(SimWorld, SimulatesHundredsOfRanksWithoutThreads) {
  // 256 ranks — far beyond what the thread-backed world can host — must
  // run in the quick tier: the cost is one replica's forward/backward, not
  // 256 of them.
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = default_config(b);
  cfg.n_workers = 256;
  cfg.epochs = 2;
  cfg.grace.compressor_spec = "topk(0.01)";
  cfg.grace.topology.kind = comm::TopologyKind::Hierarchical;
  cfg.grace.topology.ranks_per_rack = 16;
  ScaleResult r = simulate_scale(b.factory, cfg);
  EXPECT_EQ(r.n_workers, 256);
  EXPECT_GT(r.buckets_per_iter, 0);
  EXPECT_GT(r.iteration_s, 0.0);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.comm_messages, 0u);
  EXPECT_GT(r.comm_payload_bytes, 0u);
  EXPECT_GT(r.wire_bytes_per_iter, 0u);
}

TEST(SimWorld, ThousandRankSweepIsCheap) {
  // The bench_scale 1024-rank cell: all three topologies at four-digit
  // world sizes, still milliseconds (the closed forms are O(buckets)).
  Benchmark b = make_cnn_classification(0.1);
  for (auto kind : {comm::TopologyKind::Ring, comm::TopologyKind::ParameterServer,
                    comm::TopologyKind::Hierarchical}) {
    TrainConfig cfg = default_config(b);
    cfg.n_workers = 1024;
    cfg.epochs = 1;
    cfg.grace.compressor_spec = "qsgd(64)";
    cfg.grace.topology.kind = kind;
    cfg.grace.topology.ps_shards = 16;
    cfg.grace.topology.ranks_per_rack = 16;
    ScaleResult r = simulate_scale(b.factory, cfg);
    EXPECT_EQ(r.n_workers, 1024);
    EXPECT_GT(r.total_sim_seconds, 0.0);
  }
}

TEST(SimWorld, OverlapNeverExceedsAdditive) {
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = default_config(b);
  cfg.n_workers = 64;
  cfg.epochs = 1;
  cfg.fusion_bytes = size_t{20} * 1024;
  cfg.grace.compressor_spec = "topk(0.1)";
  cfg.time.overlap = true;
  ScaleResult r = simulate_scale(b.factory, cfg);
  EXPECT_LE(r.iteration_s, r.additive_iteration_s);
  EXPECT_GE(r.overlap_saved_s, 0.0);
  cfg.time.overlap = false;
  ScaleResult add = simulate_scale(b.factory, cfg);
  EXPECT_DOUBLE_EQ(add.iteration_s, add.additive_iteration_s);
  EXPECT_DOUBLE_EQ(add.overlap_saved_s, 0.0);
}

TEST(SimWorld, MoreRanksMoveMoreBytes) {
  // Topology-independent sanity: growing the fleet grows the total
  // transport volume under every topology.
  Benchmark b = make_cnn_classification(0.1);
  for (auto kind : {comm::TopologyKind::Ring, comm::TopologyKind::ParameterServer,
                    comm::TopologyKind::Hierarchical}) {
    TrainConfig cfg = default_config(b);
    cfg.epochs = 1;
    cfg.grace.compressor_spec = "signsgd";
    cfg.grace.topology.kind = kind;
    cfg.n_workers = 32;
    const ScaleResult small = simulate_scale(b.factory, cfg);
    cfg.n_workers = 128;
    const ScaleResult big = simulate_scale(b.factory, cfg);
    EXPECT_GT(big.comm_payload_bytes, small.comm_payload_bytes)
        << comm::topology_name(kind);
    EXPECT_GT(big.comm_messages, small.comm_messages)
        << comm::topology_name(kind);
  }
}

TEST(SimWorld, RejectsInvalidNetworkAndTopology) {
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = default_config(b);
  cfg.n_workers = 8;
  cfg.net.bandwidth_gbps = 0.0;  // would divide by zero downstream
  EXPECT_THROW(simulate_scale(b.factory, cfg), std::invalid_argument);
  cfg = default_config(b);
  cfg.n_workers = 8;
  cfg.grace.topology.kind = comm::TopologyKind::ParameterServer;
  cfg.grace.topology.ps_shards = 9;  // more shards than ranks
  EXPECT_THROW(simulate_scale(b.factory, cfg), std::invalid_argument);
}

TEST(SimWorld, JsonExportParsesAndCarriesTheSchema) {
  Benchmark b = make_cnn_classification(0.1);
  TrainConfig cfg = default_config(b);
  cfg.n_workers = 64;
  cfg.epochs = 1;
  cfg.grace.topology.kind = comm::TopologyKind::Hierarchical;
  cfg.grace.topology.ranks_per_rack = 8;
  const ScaleResult r = simulate_scale(b.factory, cfg);
  const std::string json = scale_result_json(r);
  testing::JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  for (const char* key :
       {"model", "compressor", "topology", "n_workers", "iters_per_epoch",
        "buckets_per_iter", "phases", "iteration_seconds",
        "additive_iteration_seconds", "total_sim_seconds", "throughput",
        "wire_bytes_per_iter", "comm_messages", "comm_payload_bytes"}) {
    EXPECT_TRUE(checker.keys().count(key)) << key;
  }
}

}  // namespace
}  // namespace grace::sim
