// Autograd engine: finite-difference gradient checks for every op, plus
// tape mechanics (topological order, accumulation, reuse).
#include <gtest/gtest.h>

#include "nn/conv_ops.h"
#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace grace::nn {
namespace {

constexpr double kTol = 4e-2;  // float32 central differences

Tensor randn(Rng& rng, Shape shape, float stddev = 1.0f) {
  Tensor t(DType::F32, std::move(shape));
  rng.fill_normal(t.f32(), 0.0f, stddev);
  return t;
}

TEST(Autograd, BackwardOfSum) {
  auto x = make_value(Tensor::from(std::vector<float>{1, 2, 3}));
  backward(sum_all(x));
  for (float g : x->grad.f32()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls) {
  auto x = make_value(Tensor::from(std::vector<float>{1, 2}));
  backward(sum_all(x));
  backward(sum_all(x));
  for (float g : x->grad.f32()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(Autograd, DiamondGraphAccumulates) {
  // y = sum(x + x): dy/dx = 2.
  auto x = make_value(Tensor::from(std::vector<float>{1, 2}));
  backward(sum_all(add(x, x)));
  for (float g : x->grad.f32()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(Autograd, TopoOrderRootFirst) {
  auto x = make_value(Tensor::from(std::vector<float>{1}));
  auto y = scale(x, 2.0f);
  auto z = sum_all(y);
  auto order = topo_order(z);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), z.get());
  EXPECT_EQ(order.back(), x.get());
}

// --- Per-op gradient checks -------------------------------------------

class OpGradCheck : public ::testing::Test {
 protected:
  Rng rng_{12345};

  void check(Module& m, const std::function<Value()>& loss) {
    auto result = gradcheck(m, loss, rng_);
    EXPECT_GT(result.checked, 0);
    EXPECT_LT(result.max_rel_error, kTol);
  }
};

TEST_F(OpGradCheck, AddSubScale) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{3, 4}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{3, 4}}));
  // d/da = 2.5, d/db = -1 (avoid exact cancellation, which makes the
  // numeric quotient pure rounding noise).
  check(m, [&] {
    return sum_all(add(scale(a.value, 1.5f), sub(a.value, b.value)));
  });
}

TEST_F(OpGradCheck, Hadamard) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{2, 5}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{2, 5}}));
  check(m, [&] { return sum_all(hadamard(a.value, b.value)); });
}

TEST_F(OpGradCheck, MatmulAndBias) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{4, 3}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{3, 2}}));
  auto& bias = m.register_parameter("bias", randn(rng_, Shape{{2}}));
  check(m, [&] { return mean_all(add_bias(matmul(a.value, b.value), bias.value)); });
}

TEST_F(OpGradCheck, Activations) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{3, 3}}));
  check(m, [&] { return sum_all(relu(a.value)); });
  check(m, [&] { return sum_all(sigmoid(a.value)); });
  check(m, [&] { return sum_all(tanh_op(a.value)); });
}

TEST_F(OpGradCheck, ReshapeSliceConcat) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{2, 6}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{2, 3}}));
  check(m, [&] {
    auto r = reshape(a.value, Shape{{3, 4}});
    return sum_all(hadamard(r, r));
  });
  check(m, [&] { return sum_all(slice_cols(a.value, 1, 3)); });
  check(m, [&] {
    auto c = concat_cols(slice_cols(a.value, 0, 3), b.value);
    return sum_all(hadamard(c, c));
  });
}

TEST_F(OpGradCheck, Embedding) {
  Module m;
  auto& table = m.register_parameter("t", randn(rng_, Shape{{7, 4}}));
  check(m, [&] {
    auto e = embedding(table.value, {0, 3, 3, 6});
    return sum_all(hadamard(e, e));
  });
}

TEST_F(OpGradCheck, SoftmaxCrossEntropy) {
  Module m;
  auto& logits = m.register_parameter("z", randn(rng_, Shape{{5, 4}}));
  check(m, [&] { return softmax_cross_entropy(logits.value, {0, 1, 2, 3, 1}); });
}

TEST_F(OpGradCheck, BceWithLogits) {
  Module m;
  auto& logits = m.register_parameter("z", randn(rng_, Shape{{4, 2}}));
  Tensor targets = Tensor::from(std::vector<float>{0, 1, 1, 0, 0.5f, 1}, Shape{{3, 2}});
  auto& z2 = m.register_parameter("z2", randn(rng_, Shape{{3, 2}}));
  check(m, [&] { return bce_with_logits(z2.value, targets); });
  (void)logits;
}

TEST_F(OpGradCheck, MseLoss) {
  Module m;
  auto& pred = m.register_parameter("p", randn(rng_, Shape{{3, 3}}));
  Tensor target = randn(rng_, Shape{{3, 3}});
  check(m, [&] { return mse_loss(pred.value, target); });
}

TEST_F(OpGradCheck, Conv2d) {
  Module m;
  auto& x = m.register_parameter("x", randn(rng_, Shape{{2, 2, 5, 5}}));
  auto& w = m.register_parameter("w", randn(rng_, Shape{{3, 2, 3, 3}}, 0.5f));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{3}}));
  check(m, [&] {
    auto y = conv2d(x.value, w.value, b.value, 1, 1);
    return mean_all(hadamard(y, y));
  });
}

TEST_F(OpGradCheck, Conv2dStride2NoPad) {
  Module m;
  auto& x = m.register_parameter("x", randn(rng_, Shape{{1, 1, 6, 6}}));
  auto& w = m.register_parameter("w", randn(rng_, Shape{{2, 1, 2, 2}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{2}}));
  check(m, [&] { return mean_all(conv2d(x.value, w.value, b.value, 2, 0)); });
}

TEST_F(OpGradCheck, MaxPoolAndUpsample) {
  Module m;
  auto& x = m.register_parameter("x", randn(rng_, Shape{{2, 2, 4, 4}}));
  check(m, [&] {
    auto y = maxpool2x2(x.value);
    return mean_all(hadamard(y, y));
  });
  check(m, [&] {
    auto y = upsample2x(x.value);
    return mean_all(hadamard(y, y));
  });
}

TEST_F(OpGradCheck, ConcatChannels) {
  Module m;
  auto& a = m.register_parameter("a", randn(rng_, Shape{{2, 2, 3, 3}}));
  auto& b = m.register_parameter("b", randn(rng_, Shape{{2, 1, 3, 3}}));
  check(m, [&] {
    auto c = concat_channels(a.value, b.value);
    return mean_all(hadamard(c, c));
  });
}

TEST_F(OpGradCheck, LstmCellThroughTime) {
  Module m;
  nn::LstmCell cell(m, "lstm", 3, 4, rng_);
  auto& x0 = m.register_parameter("x0", randn(rng_, Shape{{2, 3}}));
  auto& x1 = m.register_parameter("x1", randn(rng_, Shape{{2, 3}}));
  check(m, [&] {
    auto h = make_value(Tensor::zeros(Shape{{2, 4}}), false);
    auto c = make_value(Tensor::zeros(Shape{{2, 4}}), false);
    auto [h1, c1] = cell.forward(x0.value, h, c);
    auto [h2, c2] = cell.forward(x1.value, h1, c1);
    return sum_all(hadamard(h2, h2));
  });
}

TEST(AutogradModule, ZeroGradClears) {
  Rng rng(5);
  Module m;
  auto& a = m.register_parameter("a", randn(rng, Shape{{4}}));
  backward(sum_all(a.value));
  m.zero_grad();
  for (float g : a.value->grad.f32()) EXPECT_EQ(g, 0.0f);
}

TEST(AutogradModule, NumParametersAndCopy) {
  Rng rng(5);
  Module a, b;
  Linear la(a, "fc", 3, 2, rng);
  Rng rng2(99);
  Linear lb(b, "fc", 3, 2, rng2);
  EXPECT_EQ(a.num_parameters(), 3 * 2 + 2);
  b.copy_parameters_from(a);
  for (size_t i = 0; i < a.parameters().size(); ++i) {
    auto pa = a.parameters()[i].value->data.f32();
    auto pb = b.parameters()[i].value->data.f32();
    for (size_t j = 0; j < pa.size(); ++j) EXPECT_EQ(pa[j], pb[j]);
  }
}

}  // namespace
}  // namespace grace::nn
