// Tensor, Shape and dtype-storage behaviour.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace grace {
namespace {

TEST(Shape, NumelAndRank) {
  EXPECT_EQ(Shape({}).numel(), 1);
  EXPECT_EQ(Shape({}).rank(), 0);
  EXPECT_EQ(Shape({4}).numel(), 4);
  EXPECT_EQ(Shape({2, 3, 4}).numel(), 24);
  EXPECT_EQ(Shape({2, 3, 4}).rank(), 3);
}

TEST(Shape, Flattened) {
  EXPECT_EQ(Shape({2, 3, 4}).flattened(), Shape({24}));
}

TEST(Shape, AsMatrix) {
  EXPECT_EQ(Shape({6, 4}).as_matrix(), Shape({6, 4}));
  EXPECT_EQ(Shape({8, 3, 3, 3}).as_matrix(), Shape({8, 27}));
  EXPECT_EQ(Shape({5}).as_matrix(), Shape({5, 1}));
  EXPECT_EQ(Shape({}).as_matrix(), Shape({1, 1}));
}

TEST(Shape, ToString) { EXPECT_EQ(Shape({2, 3}).to_string(), "[2,3]"); }

TEST(Tensor, ZeroInitialized) {
  Tensor t = Tensor::zeros(Shape{{5}});
  for (float v : t.f32()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromValues) {
  const float vals[] = {1.0f, -2.0f, 3.0f};
  Tensor t = Tensor::from(vals);
  ASSERT_EQ(t.numel(), 3);
  EXPECT_EQ(t.f32()[1], -2.0f);
  EXPECT_EQ(t.size_bytes(), 12u);
}

TEST(Tensor, DTypeSizes) {
  EXPECT_EQ(Tensor(DType::U8, Shape{{10}}).size_bytes(), 10u);
  EXPECT_EQ(Tensor(DType::I32, Shape{{10}}).size_bytes(), 40u);
  EXPECT_EQ(Tensor(DType::F32, Shape{{10}}).size_bytes(), 40u);
}

TEST(Tensor, Reshaped) {
  Tensor t = Tensor::zeros(Shape{{2, 6}});
  Tensor r = t.reshaped(Shape{{3, 4}});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r.numel(), t.numel());
}

TEST(Tensor, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::scalar(2.5f).item(), 2.5f);
}

TEST(Tensor, Full) {
  Tensor t = Tensor::full(Shape{{4}}, 7.0f);
  for (float v : t.f32()) EXPECT_EQ(v, 7.0f);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::full(Shape{{3}}, 1.0f);
  Tensor b = a;
  b.f32()[0] = 9.0f;
  EXPECT_EQ(a.f32()[0], 1.0f);
}

TEST(Tensor, SameLayout) {
  EXPECT_TRUE(Tensor::zeros(Shape{{3}}).same_layout(Tensor::zeros(Shape{{3}})));
  EXPECT_FALSE(Tensor::zeros(Shape{{3}}).same_layout(Tensor::zeros(Shape{{4}})));
  EXPECT_FALSE(Tensor::zeros(Shape{{3}}).same_layout(Tensor(DType::I32, Shape{{3}})));
}

}  // namespace
}  // namespace grace
