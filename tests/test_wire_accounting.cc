// Wire-size accounting: every compressor's reported wire_bits must match
// the closed-form size of its wire format on a fixed tensor. The simulated
// communication times are only as honest as these numbers — a wrong
// wire_bits silently skews every speedup figure downstream.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/compressors/compressors.h"
#include "core/registry.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace grace::core {
namespace {

constexpr int64_t kD = 256;  // 16 x 16

Tensor fixture() {
  Tensor t(DType::F32, Shape{{16, 16}});
  Rng rng(1234);
  rng.fill_normal(t.f32(), 0.0f, 0.02f);  // gradient-like magnitudes
  return t;
}

uint64_t wire_bits_of(Compressor& q, const Tensor& grad) {
  Rng rng(99);
  return q.compress(grad, "t", rng).ctx.wire_bits;
}

TEST(WireAccounting, DenseAndQuantizedFormats) {
  const Tensor g = fixture();
  // none: raw f32.
  EXPECT_EQ(wire_bits_of(*compressors::make_none(), g), 32u * kD);
  // eightbit: one u8 code per element + one f32 scale.
  EXPECT_EQ(wire_bits_of(*compressors::make_eightbit(), g), 8u * kD + 32);
  // onebit: one sign bit per element + the two cluster means.
  EXPECT_EQ(wire_bits_of(*compressors::make_onebit(), g), kD + 64u);
  // signsgd / signum: a bare sign bit per element.
  EXPECT_EQ(wire_bits_of(*compressors::make_signsgd(), g), static_cast<uint64_t>(kD));
  EXPECT_EQ(wire_bits_of(*compressors::make_signum(), g), static_cast<uint64_t>(kD));
  // efsignsgd: sign bits + the f32 mean magnitude.
  EXPECT_EQ(wire_bits_of(*compressors::make_efsignsgd(), g), kD + 32u);
  // natural: exponent (8 bits) + sign per element, no shared scalars.
  EXPECT_EQ(wire_bits_of(*compressors::make_natural(), g), 9u * kD);
  // terngrad: 2-bit ternary code per element + the f32 scale.
  EXPECT_EQ(wire_bits_of(*compressors::make_terngrad(), g), 2u * kD + 32);
}

TEST(WireAccounting, QsgdCodeBitsForNonPowerOfTwoLevels) {
  const Tensor g = fixture();
  // ceil(log2(s+1)) code bits + 1 sign bit per element + the f32 norm.
  // s=64 needs 7 bits (65 codebook points), not log2(64)=6 — the +1 for
  // the zero level is exactly what a naive power-of-two formula misses.
  EXPECT_EQ(wire_bits_of(*compressors::make_qsgd(64), g), (7u + 1) * kD + 32);
  EXPECT_EQ(wire_bits_of(*compressors::make_qsgd(5), g), (3u + 1) * kD + 32);
  EXPECT_EQ(wire_bits_of(*compressors::make_qsgd(255), g), (8u + 1) * kD + 32);
  EXPECT_EQ(wire_bits_of(*compressors::make_qsgd(1), g), (1u + 1) * kD + 32);
}

TEST(WireAccounting, QsgdRejectsLevelsOutsideU8Range) {
  // Regression: levels > 255 used to wrap the u8 code storage (256 -> 0),
  // silently corrupting decoded magnitudes; now it must throw.
  EXPECT_THROW(compressors::make_qsgd(0), std::invalid_argument);
  EXPECT_THROW(compressors::make_qsgd(256), std::invalid_argument);
  EXPECT_THROW(compressors::make_qsgd(-3), std::invalid_argument);
  EXPECT_THROW(make_compressor("qsgd(1000)"), std::invalid_argument);
  EXPECT_NO_THROW(compressors::make_qsgd(255));
  EXPECT_NO_THROW(make_compressor("qsgd(255)"));
}

TEST(WireAccounting, SparsificationFormats) {
  const Tensor g = fixture();
  // top-k / random-k at ratio 0.05: k = floor(0.05 * 256) = 12 elements,
  // each an (f32 value, i32 index) pair.
  const uint64_t k = 12;
  EXPECT_EQ(wire_bits_of(*compressors::make_topk(0.05), g), k * 64);
  EXPECT_EQ(wire_bits_of(*compressors::make_randomk(0.05), g), k * 64);
  // threshold-v: every element with |x| strictly above v.
  const float v = 0.01f;
  const uint64_t nnz = ops::threshold_indices(g.f32(), v).size();
  ASSERT_GT(nnz, 0u);
  ASSERT_LT(nnz, static_cast<uint64_t>(kD));
  EXPECT_EQ(wire_bits_of(*compressors::make_thresholdv(v), g), nnz * 64);
}

TEST(WireAccounting, DgcMatchesTransmittedIndexCount) {
  // DGC's selection count is data- and warm-up-dependent; the invariant is
  // that wire_bits covers exactly the transmitted (value, index) pairs.
  const Tensor g = fixture();
  auto q = compressors::make_dgc(0.05);
  Rng rng(99);
  CompressedTensor ct = q->compress(g, "t", rng);
  const auto nnz = static_cast<uint64_t>(ct.parts.at(1).numel());
  ASSERT_GT(nnz, 0u);
  EXPECT_EQ(ct.ctx.wire_bits, nnz * 64);
}

TEST(WireAccounting, AdaptiveCountsBothSignPartitions) {
  const Tensor g = fixture();
  // Top alpha of the positives and of the negatives, one packed 32-bit
  // word each (1 quantized bit + 31-bit index), plus the two f32 means.
  auto x = g.f32();
  uint64_t n_pos = 0;
  for (float v : x) n_pos += v >= 0.0f;
  const uint64_t n_neg = static_cast<uint64_t>(kD) - n_pos;
  const double alpha = 0.05;
  const auto kpos = std::max<uint64_t>(
      1, static_cast<uint64_t>(alpha * static_cast<double>(n_pos)));
  const auto kneg = std::max<uint64_t>(
      1, static_cast<uint64_t>(alpha * static_cast<double>(n_neg)));
  EXPECT_EQ(wire_bits_of(*compressors::make_adaptive(alpha), g),
            (kpos + kneg) * 32 + 64);
}

TEST(WireAccounting, InceptionnPerElementPrecisionLevels) {
  const Tensor g = fixture();
  // 2-bit tag per element; dropped elements send nothing more, small ones
  // an 8-bit band code, mid-range a 16-bit half, the top band full 32-bit;
  // plus the f32 max that anchors the bands.
  auto x = g.f32();
  const float mx = ops::linf_norm(x);
  uint64_t bits = 2u * kD + 32;
  for (float v : x) {
    const float mag = std::fabs(v);
    if (mx == 0.0f || mag < 1e-3f * mx) continue;
    if (mag < 0.05f * mx) bits += 8;
    else if (mag < 0.5f * mx) bits += 16;
    else bits += 32;
  }
  EXPECT_EQ(wire_bits_of(*compressors::make_inceptionn(), g), bits);
}

TEST(WireAccounting, SketchAndLowRankFormats) {
  const Tensor g = fixture();
  // sketchml(64): ceil(log2 64) = 6-bit bucket code per element + 64 f32
  // bucket representatives.
  EXPECT_EQ(wire_bits_of(*compressors::make_sketchml(64), g),
            6u * kD + 64 * 32);
  // powersgd(4) on 16x16: the P (16x4) and Q (16x4) f32 factors.
  EXPECT_EQ(wire_bits_of(*compressors::make_powersgd(4), g),
            (16u + 16) * 4 * 32);
}

TEST(WireAccounting, WireBytesRoundsBitsUp) {
  const Tensor g = fixture();
  // signsgd: 256 bits -> exactly 32 bytes; a d=10 tensor needs ceil(10/8).
  auto q = compressors::make_signsgd();
  Rng rng(7);
  EXPECT_EQ(q->compress(g, "t", rng).wire_bytes(), 32u);
  Tensor odd(DType::F32, Shape{{10}});
  Rng rng2(8);
  rng2.fill_normal(odd.f32(), 0.0f, 1.0f);
  EXPECT_EQ(q->compress(odd, "t", rng2).wire_bytes(), 2u);  // ceil(10/8)
}

}  // namespace
}  // namespace grace::core
