// Model replicas: deterministic initialization, gradient checks through
// full model graphs, and single-replica learnability (loss decreases).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "models/cnn_small.h"
#include "models/lstm_lm.h"
#include "models/mlp_wide.h"
#include "models/ncf.h"
#include "models/unet_mini.h"
#include "nn/gradcheck.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace grace::models {
namespace {

std::shared_ptr<const data::ImageDataset> tiny_images() {
  data::ImageConfig cfg;
  cfg.n_train = 40;
  cfg.n_test = 20;
  cfg.noise = 0.5f;
  return std::make_shared<const data::ImageDataset>(data::make_images(cfg));
}

template <typename ModelT, typename... Args>
void expect_identical_init(Args&&... args) {
  ModelT a(args..., /*seed=*/7);
  ModelT b(args..., /*seed=*/7);
  ModelT c(args..., /*seed=*/8);
  auto &pa = a.module().parameters(), &pb = b.module().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  bool any_diff_c = false;
  auto& pc = c.module().parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    auto va = pa[i].value->data.f32();
    auto vb = pb[i].value->data.f32();
    auto vc = pc[i].value->data.f32();
    for (size_t j = 0; j < va.size(); ++j) {
      ASSERT_EQ(va[j], vb[j]);
      any_diff_c = any_diff_c || va[j] != vc[j];
    }
  }
  EXPECT_TRUE(any_diff_c);  // different seed -> different init
}

TEST(Models, DeterministicInitialization) {
  auto img = tiny_images();
  expect_identical_init<CnnSmall>(img);
  expect_identical_init<MlpWide>(img);
}

// Train one replica with plain SGD; loss must drop substantially.
template <typename MakeModel>
double overfit(MakeModel make, double lr, int steps, int batch = 8) {
  auto model = make();
  auto opt = optim::make_optimizer({.type = optim::OptimizerType::Adam, .lr = lr});
  Rng rng(3);
  std::vector<int64_t> idx(static_cast<size_t>(batch));
  float first = 0.0f, last = 0.0f;
  for (int s = 0; s < steps; ++s) {
    for (auto& i : idx) i = rng.uniform_int(model->train_size());
    model->module().zero_grad();
    const float loss = model->forward_backward(idx, rng);
    if (s == 0) first = loss;
    last = loss;
    size_t slot = 0;
    for (auto& p : model->module().parameters()) {
      opt->apply(slot++, p.value->data.f32(),
                 std::span<const float>(p.value->grad.f32()));
    }
  }
  EXPECT_GT(first, 0.0f);
  return static_cast<double>(last) / static_cast<double>(first);
}

TEST(Models, CnnLearns) {
  auto img = tiny_images();
  const double ratio = overfit([&] { return std::make_unique<CnnSmall>(img, 7); }, 0.01, 60);
  EXPECT_LT(ratio, 0.5);
}

TEST(Models, MlpLearns) {
  auto img = tiny_images();
  const double ratio = overfit([&] { return std::make_unique<MlpWide>(img, 7, 64); }, 0.005, 60);
  EXPECT_LT(ratio, 0.5);
}

TEST(Models, LstmLearns) {
  data::TextConfig cfg;
  cfg.train_tokens = 600;
  cfg.test_tokens = 200;
  cfg.vocab = 12;
  auto text = std::make_shared<const data::TextDataset>(data::make_text(cfg));
  const double ratio = overfit(
      [&] { return std::make_unique<LstmLm>(text, 7, 8, 16, 6); }, 0.02, 80);
  EXPECT_LT(ratio, 0.8);
}

TEST(Models, NcfLearns) {
  data::RecsysConfig cfg;
  cfg.n_users = 40;
  cfg.n_items = 60;
  auto rec = std::make_shared<const data::RecsysDataset>(data::make_recsys(cfg));
  // BCE with on-the-fly random negatives has a high noise floor (some
  // sampled "negatives" are actually liked items), so the achievable loss
  // reduction is smaller than for the supervised tasks.
  const double ratio = overfit(
      [&] { return std::make_unique<NcfRecommender>(rec, 7); }, 0.02, 200);
  EXPECT_LT(ratio, 0.9);
}

TEST(Models, UnetLearns) {
  data::SegmentationConfig cfg;
  cfg.n_train = 32;
  cfg.n_test = 8;
  auto seg = std::make_shared<const data::SegmentationDataset>(
      data::make_segmentation(cfg));
  const double ratio = overfit(
      [&] { return std::make_unique<UNetMini>(seg, 7); }, 0.01, 50, 4);
  EXPECT_LT(ratio, 0.5);
}

// Full-graph gradient check via the public model API: analytic gradients
// from forward_backward vs central differences of the returned loss.
// Tolerance is loose: model graphs traverse ReLU/maxpool kinks where
// central differences with any usable eps are biased; precise per-op checks
// live in test_autograd. This guards against wiring errors (wrong parents,
// missing accumulation), which produce order-of-magnitude mismatches.
template <typename MakeModel>
void check_model_gradients(MakeModel make, double tol = 0.5) {
  auto model = make();
  const std::vector<int64_t> idx{0, 1, 2, 3};
  auto loss_at = [&] {
    model->module().zero_grad();
    Rng r(0);  // fixed: NCF negative sampling must repeat exactly
    return static_cast<double>(model->forward_backward(idx, r));
  };
  loss_at();  // analytic gradients now live in the parameters
  Rng pick(77);
  const double eps = 1e-2;
  for (auto& p : model->module().parameters()) {
    auto values = p.value->data.f32();
    auto grads = p.value->grad.f32();
    std::vector<float> saved_grads(grads.begin(), grads.end());
    for (int s = 0; s < 4; ++s) {
      const auto at = static_cast<size_t>(pick.uniform_int(static_cast<int64_t>(values.size())));
      const float orig = values[at];
      values[at] = orig + static_cast<float>(eps);
      const double up = loss_at();
      values[at] = orig - static_cast<float>(eps);
      const double down = loss_at();
      values[at] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = saved_grads[at];
      const double denom = std::max({std::fabs(numeric), std::fabs(analytic), 2e-2});
      EXPECT_LT(std::fabs(numeric - analytic) / denom, tol)
          << p.name << "[" << at << "] numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

TEST(Models, GradientCheckCnn) {
  auto img = tiny_images();
  check_model_gradients([&] { return std::make_unique<CnnSmall>(img, 11); });
}

TEST(Models, GradientCheckUnet) {
  data::SegmentationConfig cfg;
  cfg.n_train = 8;
  cfg.n_test = 4;
  auto seg = std::make_shared<const data::SegmentationDataset>(
      data::make_segmentation(cfg));
  check_model_gradients([&] { return std::make_unique<UNetMini>(seg, 11); });
}

TEST(Models, GradientCheckLstm) {
  data::TextConfig cfg;
  cfg.train_tokens = 200;
  cfg.test_tokens = 100;
  cfg.vocab = 10;
  auto text = std::make_shared<const data::TextDataset>(data::make_text(cfg));
  check_model_gradients(
      [&] { return std::make_unique<LstmLm>(text, 11, 8, 12, 5); });
}

TEST(Models, GradientCheckNcf) {
  data::RecsysConfig cfg;
  cfg.n_users = 20;
  cfg.n_items = 30;
  auto rec = std::make_shared<const data::RecsysDataset>(data::make_recsys(cfg));
  check_model_gradients(
      [&] { return std::make_unique<NcfRecommender>(rec, 11); });
}

TEST(Models, EvaluateReturnsSaneRanges) {
  auto img = tiny_images();
  CnnSmall cnn(img, 3);
  auto e = cnn.evaluate();
  EXPECT_GE(e.quality, 0.0);
  EXPECT_LE(e.quality, 1.0);
  EXPECT_GT(e.loss, 0.0);

  data::SegmentationConfig scfg;
  scfg.n_train = 8;
  scfg.n_test = 8;
  auto seg = std::make_shared<const data::SegmentationDataset>(
      data::make_segmentation(scfg));
  UNetMini unet(seg, 3);
  auto es = unet.evaluate();
  EXPECT_GE(es.quality, 0.0);
  EXPECT_LE(es.quality, 1.0);
}

TEST(Models, PerplexityOfUntrainedModelNearVocab) {
  data::TextConfig cfg;
  cfg.train_tokens = 400;
  cfg.test_tokens = 300;
  cfg.vocab = 20;
  auto text = std::make_shared<const data::TextDataset>(data::make_text(cfg));
  LstmLm lm(text, 5, 8, 16, 6);
  const double ppl = lm.test_perplexity();
  EXPECT_GT(ppl, 10.0);
  EXPECT_LT(ppl, 40.0);  // near-uniform predictions => ~vocab
}

TEST(Models, FlopsAndMetadata) {
  auto img = tiny_images();
  CnnSmall cnn(img, 1);
  MlpWide mlp(img, 1, 128);
  EXPECT_GT(cnn.flops_per_sample(), 0.0);
  EXPECT_GT(mlp.flops_per_sample(), 0.0);
  EXPECT_EQ(cnn.name(), "cnn-small");
  EXPECT_EQ(cnn.quality_metric(), "top1-accuracy");
  EXPECT_GT(cnn.module().num_parameters(), 0);
  EXPECT_EQ(cnn.train_size(), 40);
}

}  // namespace
}  // namespace grace::models
