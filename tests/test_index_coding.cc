// Edge cases for the lossless index coders and the 64-bit-accumulator bit
// I/O behind them: empty and single-element lists, indices at the top of
// the int32 range, rice with k = 0, forced vs auto divisor choice, and a
// golden-bytes check that pins the stream format (LSB-first within each
// byte — the format the original bit-at-a-time writer produced, which
// framed payloads already on the wire depend on).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/index_coding.h"
#include "tensor/rng.h"

namespace {

using namespace grace;
using core::bits_per_index;
using core::rice_decode_indices;
using core::rice_encode_indices;
using core::varint_decode_indices;
using core::varint_encode_indices;

std::vector<uint8_t> bytes_of(const Tensor& t) {
  auto s = t.u8();
  return {s.begin(), s.end()};
}

}  // namespace

TEST(IndexCoding, EmptyList) {
  const std::vector<int32_t> empty;
  Tensor v = varint_encode_indices(empty);
  EXPECT_EQ(v.numel(), 0);
  EXPECT_TRUE(varint_decode_indices(v, 0).empty());

  Tensor r = rice_encode_indices(empty);
  EXPECT_EQ(r.numel(), 1);  // just the 5-bit k header, padded to a byte
  EXPECT_TRUE(rice_decode_indices(r, 0).empty());
}

TEST(IndexCoding, SingleIndex) {
  for (int32_t idx : {0, 1, 127, 128, 1 << 20}) {
    const std::vector<int32_t> one = {idx};
    EXPECT_EQ(varint_decode_indices(varint_encode_indices(one), 1), one);
    EXPECT_EQ(rice_decode_indices(rice_encode_indices(one), 1), one);
    for (int k : {0, 1, 5, 12}) {
      EXPECT_EQ(rice_decode_indices(rice_encode_indices(one, k), 1), one)
          << "idx=" << idx << " k=" << k;
    }
  }
}

TEST(IndexCoding, NearInt32MaxRoundTrips) {
  const int32_t top = std::numeric_limits<int32_t>::max();
  // First delta alone is > 2^30; auto-k clamps at 24 so the unary
  // quotients stay bounded.
  const std::vector<int32_t> idx = {top - 1000000, top - 7, top - 1, top};
  EXPECT_EQ(varint_decode_indices(varint_encode_indices(idx), 4), idx);
  EXPECT_EQ(rice_decode_indices(rice_encode_indices(idx), 4), idx);
  EXPECT_EQ(rice_decode_indices(rice_encode_indices(idx, 24), 4), idx);
}

TEST(IndexCoding, RiceKZero) {
  // k = 0: pure unary gap coding. Adjacent indices (gap deltas of 0) cost
  // one bit each.
  const std::vector<int32_t> runs = {0, 1, 2, 3, 10};
  Tensor coded = rice_encode_indices(runs, 0);
  EXPECT_EQ(rice_decode_indices(coded, 5), runs);
  // 5 header bits + 4 one-bit symbols + one 7-bit symbol (gap 6) = 16 bits.
  EXPECT_EQ(coded.numel(), 2);
}

TEST(IndexCoding, ForcedKMatchesAutoKDecoding) {
  Rng rng(31);
  const auto idx = rng.sample_indices(1 << 16, 700);
  const int64_t n = static_cast<int64_t>(idx.size());
  const Tensor auto_coded = rice_encode_indices(idx);
  EXPECT_EQ(rice_decode_indices(auto_coded, n), idx);
  double best_forced = 1e300;
  for (int k = 0; k <= 12; ++k) {
    const Tensor coded = rice_encode_indices(idx, k);
    EXPECT_EQ(rice_decode_indices(coded, n), idx) << "k=" << k;
    best_forced = std::min(best_forced, bits_per_index(coded, n));
  }
  // Auto-k (from the mean gap) must land near the best forced divisor.
  EXPECT_LE(bits_per_index(auto_coded, n), best_forced * 1.25);
}

TEST(IndexCoding, GoldenStreamBytes) {
  // Pins the LSB-first-within-byte stream format of the 64-bit writer.
  // rice({0,1,3}, k=2): header 2 in 5 bits, two zero symbols (gap deltas
  // 0), then quotient 0 + remainder 1 -> 14 bits total.
  EXPECT_EQ(bytes_of(rice_encode_indices(std::vector<int32_t>{0, 1, 3}, 2)),
            (std::vector<uint8_t>{0x02, 0x10}));
  // varint({0,300}): delta 1 -> 0x01; delta 300 -> 0xAC 0x02 (LEB128).
  EXPECT_EQ(bytes_of(varint_encode_indices(std::vector<int32_t>{0, 300})),
            (std::vector<uint8_t>{0x01, 0xAC, 0x02}));
}

TEST(IndexCoding, SparseSampleRoundTrips) {
  Rng rng(37);
  for (int64_t k : {int64_t{1}, int64_t{100}, int64_t{4096}}) {
    const auto idx = rng.sample_indices(1 << 20, k);
    const int64_t n = static_cast<int64_t>(idx.size());
    EXPECT_EQ(varint_decode_indices(varint_encode_indices(idx), n), idx);
    EXPECT_EQ(rice_decode_indices(rice_encode_indices(idx), n), idx);
  }
}
