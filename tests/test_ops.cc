// Element-wise / reduction kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace grace {
namespace {

std::vector<float> v(std::initializer_list<float> init) { return init; }

TEST(Ops, FillScaleAdd) {
  auto x = v({1, 2, 3});
  ops::scale(x, 2.0f);
  EXPECT_EQ(x, v({2, 4, 6}));
  auto y = v({1, 1, 1});
  ops::add(y, x);
  EXPECT_EQ(y, v({3, 5, 7}));
  ops::sub(y, x);
  EXPECT_EQ(y, v({1, 1, 1}));
  ops::axpy(y, 3.0f, x);
  EXPECT_EQ(y, v({7, 13, 19}));
  ops::fill(y, 0.0f);
  EXPECT_EQ(y, v({0, 0, 0}));
}

TEST(Ops, Hadamard) {
  auto y = v({2, 3, 4});
  ops::hadamard(y, v({1, -2, 0}));
  EXPECT_EQ(y, v({2, -6, 0}));
}

TEST(Ops, DotSumMean) {
  EXPECT_FLOAT_EQ(ops::dot(v({1, 2, 3}), v({4, 5, 6})), 32.0f);
  EXPECT_FLOAT_EQ(ops::sum(v({1, 2, 3})), 6.0f);
  EXPECT_FLOAT_EQ(ops::mean(v({1, 2, 3})), 2.0f);
  EXPECT_FLOAT_EQ(ops::mean({}), 0.0f);
}

TEST(Ops, Norms) {
  const auto x = v({3, -4, 0});
  EXPECT_FLOAT_EQ(ops::l1_norm(x), 7.0f);
  EXPECT_FLOAT_EQ(ops::l2_norm(x), 5.0f);
  EXPECT_FLOAT_EQ(ops::linf_norm(x), 4.0f);
}

TEST(Ops, MinMaxArgmax) {
  const auto x = v({1, 9, -3, 9});
  EXPECT_FLOAT_EQ(ops::max(x), 9.0f);
  EXPECT_FLOAT_EQ(ops::min(x), -3.0f);
  EXPECT_EQ(ops::argmax(x), 1);  // first maximum
}

TEST(Ops, CountNonzero) {
  EXPECT_EQ(ops::count_nonzero(v({0, 1, 0, -2})), 2);
}

TEST(Ops, SignAndAbs) {
  auto x = v({-2, 0, 5});
  std::vector<float> s(3);
  ops::sign_into(x, s);
  EXPECT_EQ(s, v({-1, 1, 1}));  // sign(0) == +1 by convention
  ops::abs_inplace(x);
  EXPECT_EQ(x, v({2, 0, 5}));
}

TEST(Ops, Clamp) {
  auto x = v({-5, 0.5, 5});
  ops::clamp(x, -1.0f, 1.0f);
  EXPECT_EQ(x, v({-1, 0.5, 1}));
}

TEST(Ops, TopkAbsIndices) {
  const auto x = v({0.1f, -9.0f, 3.0f, -0.5f, 8.0f});
  auto idx = ops::topk_abs_indices(x, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);  // |-9| largest
  EXPECT_EQ(idx[1], 4);  // |8| second
}

TEST(Ops, TopkAllAndNone) {
  const auto x = v({1, 2, 3});
  EXPECT_EQ(ops::topk_abs_indices(x, 0).size(), 0u);
  EXPECT_EQ(ops::topk_abs_indices(x, 3).size(), 3u);
  EXPECT_EQ(ops::topk_abs_indices(x, 99).size(), 3u);  // clamped
}

TEST(Ops, TopkTieBreaksByIndex) {
  const auto x = v({1, 1, 1, 1});
  auto idx = ops::topk_abs_indices(x, 2);
  EXPECT_EQ(idx, (std::vector<int32_t>{0, 1}));
}

TEST(Ops, KthLargestAbs) {
  const auto x = v({0.1f, -9.0f, 3.0f, -0.5f, 8.0f});
  EXPECT_FLOAT_EQ(ops::kth_largest_abs(x, 1), 9.0f);
  EXPECT_FLOAT_EQ(ops::kth_largest_abs(x, 2), 8.0f);
  EXPECT_FLOAT_EQ(ops::kth_largest_abs(x, 5), 0.1f);
}

TEST(Ops, ThresholdIndices) {
  const auto x = v({0.1f, -9.0f, 3.0f, -0.5f, 8.0f});
  EXPECT_EQ(ops::threshold_indices(x, 2.9f), (std::vector<int32_t>{1, 2, 4}));
  EXPECT_EQ(ops::threshold_indices(x, 100.0f).size(), 0u);
}

TEST(Ops, AbsQuantile) {
  std::vector<float> x(101);
  for (int i = 0; i <= 100; ++i) x[static_cast<size_t>(i)] = static_cast<float>(i);
  EXPECT_FLOAT_EQ(ops::abs_quantile(x, 0.0), 0.0f);
  EXPECT_FLOAT_EQ(ops::abs_quantile(x, 1.0), 100.0f);
  EXPECT_NEAR(ops::abs_quantile(x, 0.5), 50.0f, 1.0f);
}

TEST(Ops, TopkMatchesKthLargestConsistency) {
  Rng rng(3);
  std::vector<float> x(500);
  rng.fill_normal(x, 0.0f, 1.0f);
  const int64_t k = 50;
  auto idx = ops::topk_abs_indices(x, k);
  const float kth = ops::kth_largest_abs(x, k);
  // Every selected element is >= the k-th largest magnitude.
  for (int32_t i : idx) EXPECT_GE(std::fabs(x[static_cast<size_t>(i)]), kth);
}

}  // namespace
}  // namespace grace
