// In-process message passing and collectives, executed by real threads.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "comm/collectives.h"
#include "comm/topology.h"
#include "tensor/rng.h"

namespace grace::comm {
namespace {

// Runs fn(rank) on n threads and joins.
void run_ranks(World& world, int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
  (void)world;
}

TEST(Mailbox, FifoPerSourceAndTag) {
  Mailbox box;
  box.put({0, 1, Tensor::scalar(1.0f)});
  box.put({0, 1, Tensor::scalar(2.0f)});
  box.put({1, 1, Tensor::scalar(3.0f)});
  EXPECT_FLOAT_EQ(box.take(1, 1).payload.item(), 3.0f);  // out of order by src
  EXPECT_FLOAT_EQ(box.take(0, 1).payload.item(), 1.0f);
  EXPECT_FLOAT_EQ(box.take(0, 1).payload.item(), 2.0f);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, TagIsolation) {
  Mailbox box;
  box.put({0, 7, Tensor::scalar(7.0f)});
  box.put({0, 8, Tensor::scalar(8.0f)});
  EXPECT_FLOAT_EQ(box.take(0, 8).payload.item(), 8.0f);
  EXPECT_FLOAT_EQ(box.take(0, 7).payload.item(), 7.0f);
}

TEST(Comm, PointToPoint) {
  World world(2);
  run_ranks(world, 2, [&](int rank) {
    auto comm = world.comm(rank);
    if (rank == 0) {
      comm.send(1, Tensor::from(std::vector<float>{1, 2, 3}));
      Tensor back = comm.recv(1);
      EXPECT_FLOAT_EQ(back.f32()[0], 9.0f);
    } else {
      Tensor got = comm.recv(0);
      EXPECT_EQ(got.numel(), 3);
      comm.send(0, Tensor::scalar(9.0f));
    }
  });
}

class AllreduceTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllreduceTest, SumsElementwise) {
  const int n = std::get<0>(GetParam());
  const int64_t size = std::get<1>(GetParam());
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    std::vector<float> data(static_cast<size_t>(size));
    for (int64_t i = 0; i < size; ++i) {
      data[static_cast<size_t>(i)] = static_cast<float>(rank + 1) * static_cast<float>(i);
    }
    allreduce_sum(comm, data);
    const float factor = static_cast<float>(n * (n + 1)) / 2.0f;  // sum of rank+1
    for (int64_t i = 0; i < size; ++i) {
      EXPECT_FLOAT_EQ(data[static_cast<size_t>(i)], factor * static_cast<float>(i))
          << "rank " << rank << " elem " << i;
    }
  });
}

// Sizes below, equal to, and far above the worker count; odd remainders.
INSTANTIATE_TEST_SUITE_P(
    Shapes, AllreduceTest,
    ::testing::Values(std::tuple{2, 1}, std::tuple{2, 10}, std::tuple{3, 2},
                      std::tuple{4, 4}, std::tuple{4, 103}, std::tuple{8, 1},
                      std::tuple{8, 1000}, std::tuple{5, 17}, std::tuple{1, 8}));

TEST(Collectives, AllgatherVariableSizes) {
  const int n = 4;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    // Each rank contributes rank+1 elements of value rank.
    Tensor mine = Tensor::full(Shape{{rank + 1}}, static_cast<float>(rank));
    auto all = allgather(comm, mine);
    ASSERT_EQ(all.size(), static_cast<size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      ASSERT_EQ(all[static_cast<size_t>(peer)].numel(), peer + 1);
      for (float v : all[static_cast<size_t>(peer)].f32()) {
        EXPECT_FLOAT_EQ(v, static_cast<float>(peer));
      }
    }
  });
}

TEST(Collectives, AllgatherPreservesDtype) {
  const int n = 2;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    Tensor mine(DType::U8, Shape{{3}});
    mine.u8()[0] = static_cast<uint8_t>(rank);
    auto all = allgather(comm, mine);
    EXPECT_EQ(all[0].dtype(), DType::U8);
    EXPECT_EQ(all[1].dtype(), DType::U8);
    EXPECT_EQ(all[static_cast<size_t>(rank)].u8()[0], static_cast<uint8_t>(rank));
  });
}

TEST(Collectives, Broadcast) {
  const int n = 4;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    Tensor t = rank == 2 ? Tensor::from(std::vector<float>{5, 6})
                         : Tensor::zeros(Shape{{2}});
    broadcast(comm, t, /*root=*/2);
    EXPECT_FLOAT_EQ(t.f32()[0], 5.0f);
    EXPECT_FLOAT_EQ(t.f32()[1], 6.0f);
  });
}

TEST(Collectives, BarrierCompletes) {
  const int n = 6;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    barrier(comm);
    barrier(comm, 1);
  });
}

TEST(Collectives, ManySequentialCollectivesStress) {
  const int n = 4;
  World world(n);
  Rng size_rng(99);
  std::vector<int64_t> sizes;
  for (int i = 0; i < 50; ++i) sizes.push_back(1 + size_rng.uniform_int(64));
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    for (size_t i = 0; i < sizes.size(); ++i) {
      std::vector<float> data(static_cast<size_t>(sizes[i]), static_cast<float>(rank));
      allreduce_sum(comm, data, static_cast<int>(i));
      const float expect = static_cast<float>(n * (n - 1)) / 2.0f;
      for (float v : data) ASSERT_FLOAT_EQ(v, expect);
    }
  });
}

TEST(Collectives, AllreduceSmallerThanWorld) {
  // data.size() < n: chunk_range legally produces empty chunks and the ring
  // still sends the zero-size tensors (they carry the step structure).
  const int n = 6;
  const int64_t size = 3;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    std::vector<float> data(static_cast<size_t>(size),
                            static_cast<float>(rank + 1));
    allreduce_sum(comm, data);
    const float expect = static_cast<float>(n * (n + 1)) / 2.0f;
    for (float v : data) EXPECT_FLOAT_EQ(v, expect);
  });
  // Zero-size chunk sends count as messages, with zero bytes — exactly
  // what the closed-form volume predicts.
  const WireVolume v = ring_allreduce_volume(n, size);
  EXPECT_EQ(world.messages_sent(), v.messages);
  EXPECT_EQ(world.payload_bytes_sent(), v.bytes);
}

TEST(Collectives, AllgatherZeroSizeTensors) {
  const int n = 4;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    // Odd ranks contribute empty tensors.
    Tensor mine = rank % 2 == 1
                      ? Tensor(DType::F32, Shape{{0}})
                      : Tensor::full(Shape{{2}}, static_cast<float>(rank));
    auto all = allgather(comm, mine);
    ASSERT_EQ(all.size(), static_cast<size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      EXPECT_EQ(all[static_cast<size_t>(peer)].numel(), peer % 2 == 1 ? 0 : 2);
    }
  });
  // n(n-1) forwards even when half the payloads are empty.
  EXPECT_EQ(world.messages_sent(), static_cast<uint64_t>(n * (n - 1)));
}

TEST(Collectives, BarrierManyRanksEmptyChunks) {
  // barrier() allreduces ONE float, so every world with n > 1 exercises the
  // empty-chunk ring path (n - 1 of the n chunks are empty).
  for (int n : {2, 3, 7}) {
    World world(n);
    run_ranks(world, n, [&](int rank) {
      auto comm = world.comm(rank);
      barrier(comm);
    });
    const WireVolume v = ring_allreduce_volume(n, 1);
    EXPECT_EQ(world.messages_sent(), v.messages) << "n=" << n;
    EXPECT_EQ(world.payload_bytes_sent(), v.bytes) << "n=" << n;
  }
}

TEST(Collectives, DeterministicAcrossRanks) {
  // All ranks must end with bit-identical buffers (the trainer's replica
  // consistency depends on this).
  const int n = 3;
  World world(n);
  std::vector<std::vector<float>> results(static_cast<size_t>(n));
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    Rng rng(static_cast<uint64_t>(rank) + 1);
    std::vector<float> data(257);
    rng.fill_normal(data, 0.0f, 1.0f);
    allreduce_sum(comm, data);
    results[static_cast<size_t>(rank)] = data;
  });
  for (int r = 1; r < n; ++r) {
    ASSERT_EQ(results[0], results[static_cast<size_t>(r)]);
  }
}

}  // namespace
}  // namespace grace::comm

namespace grace::comm {
namespace {

TEST(Comm, BytesSentSurvivesHandleCopies) {
  // Regression: Comm is passed by value all over the collectives; a
  // per-handle counter lost every byte sent through a copy. The count now
  // lives in a per-rank World slot, so any handle for the rank sees it.
  World world(2);
  std::thread t0([&] {
    auto comm = world.comm(0);
    Comm copy = comm;  // the old bug: bytes through `copy` vanished
    copy.send(1, Tensor::zeros(Shape{{10}}));  // 40 bytes
    comm.send(1, Tensor::zeros(Shape{{5}}));   // 20 bytes
    EXPECT_EQ(comm.bytes_sent(), 60u);
    EXPECT_EQ(copy.bytes_sent(), 60u);
    EXPECT_EQ(world.comm(0).bytes_sent(), 60u);  // a brand-new handle too
  });
  std::thread t1([&] {
    auto comm = world.comm(1);
    (void)comm.recv(0);
    (void)comm.recv(0);
    EXPECT_EQ(comm.bytes_sent(), 0u);  // per-rank, not world-global
  });
  t0.join();
  t1.join();
  EXPECT_EQ(world.payload_bytes_sent(), 60u);
  EXPECT_EQ(world.rank_bytes_sent(0), 60u);
  EXPECT_EQ(world.rank_bytes_sent(1), 0u);
}

// --- Hierarchical collectives ------------------------------------------

class HierarchicalTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HierarchicalTest, AllreduceSumsAndMatchesVolume) {
  const auto [n, rack, size] = GetParam();
  World world(n);
  std::vector<std::vector<float>> results(static_cast<size_t>(n));
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    std::vector<float> data(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) {
      data[static_cast<size_t>(i)] =
          static_cast<float>(rank + 1) * static_cast<float>(i + 1);
    }
    hierarchical_allreduce_sum(comm, data, rack);
    results[static_cast<size_t>(rank)] = data;
  });
  const float factor = static_cast<float>(n * (n + 1)) / 2.0f;
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < size; ++i) {
      ASSERT_NEAR(results[static_cast<size_t>(r)][static_cast<size_t>(i)],
                  factor * static_cast<float>(i + 1), 1e-3f)
          << "n=" << n << " rack=" << rack << " rank=" << r;
    }
    // All ranks bit-identical (replica sync depends on it).
    ASSERT_EQ(results[static_cast<size_t>(r)], results[0]);
  }
  // The topology model's closed form counts exactly what crossed the wire.
  NetworkModel net;
  net.n_workers = n;
  TopologyConfig cfg;
  cfg.kind = TopologyKind::Hierarchical;
  cfg.ranks_per_rack = rack;
  const WireVolume v = make_topology(cfg, net)->allreduce_volume(size);
  EXPECT_EQ(world.messages_sent(), v.messages);
  EXPECT_EQ(world.payload_bytes_sent(), v.bytes);
}

TEST_P(HierarchicalTest, AllgatherOrdersBlobsAndMatchesVolume) {
  const auto [n, rack, size] = GetParam();
  const uint64_t blob_bytes = static_cast<uint64_t>(size);
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    Tensor mine(DType::U8, Shape{{size}});
    for (auto& b : mine.u8()) b = static_cast<uint8_t>(rank);
    auto all = hierarchical_allgather(comm, mine, rack);
    ASSERT_EQ(all.size(), static_cast<size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      const Tensor& t = all[static_cast<size_t>(peer)];
      ASSERT_EQ(t.numel(), size);
      for (uint8_t b : t.u8()) ASSERT_EQ(b, static_cast<uint8_t>(peer));
    }
  });
  NetworkModel net;
  net.n_workers = n;
  TopologyConfig cfg;
  cfg.kind = TopologyKind::Hierarchical;
  cfg.ranks_per_rack = rack;
  const WireVolume v = make_topology(cfg, net)->allgather_volume(blob_bytes);
  EXPECT_EQ(world.messages_sent(), v.messages);
  EXPECT_EQ(world.payload_bytes_sent(), v.bytes);
}

// Rack sizes spanning: every-rank-a-leader (1), ragged last rack, exact
// division, single rack (rack >= n).
INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalTest,
    ::testing::Values(std::tuple{5, 1, 7}, std::tuple{5, 2, 7},
                      std::tuple{6, 3, 4}, std::tuple{4, 8, 5},
                      std::tuple{7, 3, 2}, std::tuple{1, 4, 3}));

TEST(Collectives, RingVolumeMatchesThreadWorld) {
  // Flat ring allgather of symmetric blobs vs the Ring topology model.
  const int n = 4;
  const int64_t blob = 5;
  World world(n);
  run_ranks(world, n, [&](int rank) {
    auto comm = world.comm(rank);
    Tensor mine(DType::U8, Shape{{blob}});
    (void)allgather(comm, mine);
    (void)rank;
  });
  NetworkModel net;
  net.n_workers = n;
  const WireVolume v = make_topology(TopologyConfig{}, net)
                           ->allgather_volume(static_cast<uint64_t>(blob));
  EXPECT_EQ(world.messages_sent(), v.messages);
  EXPECT_EQ(world.payload_bytes_sent(), v.bytes);
}

TEST(Collectives, BlobBundleRoundTrip) {
  std::vector<Tensor> blobs;
  blobs.emplace_back(DType::U8, Shape{{3}});
  blobs.back().u8()[0] = 7;
  blobs.emplace_back(DType::U8, Shape{{0}});  // empty blob is legal
  blobs.emplace_back(DType::U8, Shape{{5}});
  blobs.back().u8()[4] = 9;
  Tensor bundle = pack_blob_bundle(blobs);
  // Framing: u64 count + 3 u64 lengths + 8 payload bytes.
  EXPECT_EQ(bundle.size_bytes(), 8u * 4 + 8);
  auto out = unpack_blob_bundle(bundle);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].numel(), 3);
  EXPECT_EQ(out[0].u8()[0], 7);
  EXPECT_EQ(out[1].numel(), 0);
  EXPECT_EQ(out[2].u8()[4], 9);
}

TEST(Collectives, BlobBundleRejectsMalformed) {
  EXPECT_THROW(unpack_blob_bundle(Tensor(DType::U8, Shape{{4}})),
               std::runtime_error);  // truncated header
  Tensor huge_count(DType::U8, Shape{{16}});
  huge_count.u8()[0] = 0xFF;  // count = 255, nowhere near 8 bytes of lens
  EXPECT_THROW(unpack_blob_bundle(huge_count), std::runtime_error);
  Tensor bad_len = pack_blob_bundle(std::vector<Tensor>{
      Tensor(DType::U8, Shape{{2}})});
  bad_len.u8()[8] = 3;  // length now exceeds the remaining payload
  EXPECT_THROW(unpack_blob_bundle(bad_len), std::runtime_error);
  EXPECT_THROW(unpack_blob_bundle(Tensor::zeros(Shape{{4}})),
               std::runtime_error);  // F32, not U8
}

TEST(Collectives, HierarchicalRejectsBadArguments) {
  World world(1);
  auto comm = world.comm(0);
  std::vector<float> data(4, 1.0f);
  EXPECT_THROW(hierarchical_allreduce_sum(comm, data, 0),
               std::invalid_argument);
  EXPECT_THROW(hierarchical_allgather(comm, Tensor::zeros(Shape{{2}}), 2),
               std::invalid_argument);  // F32 blob
}

TEST(Comm, BytesSentAccounting) {
  World world(2);
  std::vector<size_t> sent(2);
  std::thread t0([&] {
    auto comm = world.comm(0);
    comm.send(1, Tensor::zeros(Shape{{100}}));  // 400 bytes
    comm.send(1, Tensor(DType::U8, Shape{{7}}));
    (void)comm.recv(1);
    sent[0] = comm.bytes_sent();
  });
  std::thread t1([&] {
    auto comm = world.comm(1);
    (void)comm.recv(0);
    (void)comm.recv(0);
    comm.send(0, Tensor::scalar(1.0f));
    sent[1] = comm.bytes_sent();
  });
  t0.join();
  t1.join();
  EXPECT_EQ(sent[0], 407u);
  EXPECT_EQ(sent[1], 4u);
}

TEST(Comm, RanksAndSize) {
  World world(3);
  EXPECT_EQ(world.size(), 3);
  EXPECT_EQ(world.comm(2).rank(), 2);
  EXPECT_EQ(world.comm(0).size(), 3);
}

}  // namespace
}  // namespace grace::comm
