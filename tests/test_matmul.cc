// GEMM, transpose, im2col/col2im.
#include <gtest/gtest.h>

#include <vector>

#include "tensor/matmul.h"
#include "tensor/rng.h"

namespace grace {
namespace {

TEST(Matmul, Basic2x2) {
  const std::vector<float> a{1, 2, 3, 4};  // [[1,2],[3,4]]
  const std::vector<float> b{5, 6, 7, 8};  // [[5,6],[7,8]]
  std::vector<float> c(4);
  ops::gemm(false, false, 2, 2, 2, 1.0f, a, b, 0.0f, c);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(Matmul, Rectangular) {
  const std::vector<float> a{1, 2, 3, 4, 5, 6};  // 2x3
  const std::vector<float> b{1, 0, 0, 1, 1, 1};  // 3x2
  std::vector<float> c(4);
  ops::gemm(false, false, 2, 2, 3, 1.0f, a, b, 0.0f, c);
  EXPECT_EQ(c, (std::vector<float>{4, 5, 10, 11}));
}

TEST(Matmul, AlphaBeta) {
  const std::vector<float> a{1, 0, 0, 1};
  const std::vector<float> b{2, 3, 4, 5};
  std::vector<float> c{1, 1, 1, 1};
  ops::gemm(false, false, 2, 2, 2, 2.0f, a, b, 1.0f, c);
  EXPECT_EQ(c, (std::vector<float>{5, 7, 9, 11}));
}

TEST(Matmul, Transpose) {
  const std::vector<float> in{1, 2, 3, 4, 5, 6};  // 2x3
  std::vector<float> out(6);
  ops::transpose(in, 2, 3, out);
  EXPECT_EQ(out, (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(Matmul, TransAFlagMatchesExplicitTranspose) {
  Rng rng(1);
  const int64_t m = 4, k = 5, n = 3;
  std::vector<float> at(static_cast<size_t>(k * m)), b(static_cast<size_t>(k * n));
  rng.fill_normal(at, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(m * k));
  ops::transpose(at, k, m, a);
  std::vector<float> c1(static_cast<size_t>(m * n)), c2(static_cast<size_t>(m * n));
  ops::gemm(true, false, m, n, k, 1.0f, at, b, 0.0f, c1);
  ops::gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c2);
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5f);
}

TEST(Matmul, TransBFlagMatchesExplicitTranspose) {
  Rng rng(2);
  const int64_t m = 3, k = 4, n = 5;
  std::vector<float> a(static_cast<size_t>(m * k)), bt(static_cast<size_t>(n * k));
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(bt, 0.0f, 1.0f);
  std::vector<float> b(static_cast<size_t>(k * n));
  ops::transpose(bt, n, k, b);
  std::vector<float> c1(static_cast<size_t>(m * n)), c2(static_cast<size_t>(m * n));
  ops::gemm(false, true, m, n, k, 1.0f, a, bt, 0.0f, c1);
  ops::gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c2);
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5f);
}

TEST(Conv, OutDim) {
  EXPECT_EQ(ops::conv_out_dim(16, 3, 1, 1), 16);
  EXPECT_EQ(ops::conv_out_dim(16, 3, 1, 0), 14);
  EXPECT_EQ(ops::conv_out_dim(16, 2, 2, 0), 8);
}

TEST(Conv, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
  const std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(4);
  ops::im2col(img, 1, 2, 2, 1, 1, 1, 0, cols);
  EXPECT_EQ(cols, img);
}

TEST(Conv, Im2ColPadding) {
  // 3x3 kernel centered at (0,0) with pad 1: top-left element of the patch
  // is out of bounds -> 0.
  const std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(9 * 4);
  ops::im2col(img, 1, 2, 2, 3, 3, 1, 1, cols);
  // Row 0 = kernel offset (0,0): value at (i-1, j-1).
  EXPECT_EQ(cols[0], 0.0f);   // (-1,-1)
  EXPECT_EQ(cols[3], 1.0f);   // output (1,1) reads img(0,0)
  // Row 4 = kernel center: exactly the image.
  EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
  EXPECT_EQ(cols[4 * 4 + 3], 4.0f);
}

TEST(Conv, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the conv backward pass relies on.
  Rng rng(7);
  const int64_t c = 2, h = 5, w = 4, kh = 3, kw = 3, stride = 1, pad = 1;
  const int64_t oh = ops::conv_out_dim(h, kh, stride, pad);
  const int64_t ow = ops::conv_out_dim(w, kw, stride, pad);
  const size_t img_n = static_cast<size_t>(c * h * w);
  const size_t col_n = static_cast<size_t>(c * kh * kw * oh * ow);
  std::vector<float> x(img_n), y(col_n), cols(col_n), img(img_n, 0.0f);
  rng.fill_normal(x, 0.0f, 1.0f);
  rng.fill_normal(y, 0.0f, 1.0f);
  ops::im2col(x, c, h, w, kh, kw, stride, pad, cols);
  ops::col2im(y, c, h, w, kh, kw, stride, pad, img);
  double lhs = 0.0, rhs = 0.0;
  for (size_t i = 0; i < col_n; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (size_t i = 0; i < img_n; ++i) rhs += static_cast<double>(x[i]) * img[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace grace
