// The compression-fidelity observability layer: GraceWorker's probe hook
// (per-tensor ratio / reconstruction-error / cosine / sign-agreement /
// EF-residual measurements), the lock-free MetricRegistry (log2 histograms
// + counters with deterministic cross-rank merge), the Chrome-trace
// exporter, and the JSON surfaces of all three (validated with the strict
// shared checker, standing in for bench_fidelity's output).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/grace_world.h"
#include "data/synthetic_images.h"
#include "json_checker.h"
#include "models/cnn_small.h"
#include "sim/fidelity.h"
#include "sim/metric_registry.h"
#include "sim/tasks.h"
#include "sim/trace.h"
#include "sim/trace_chrome.h"

namespace grace::sim {
namespace {

using grace::testing::JsonChecker;

// One probed single-rank exchange: every fidelity quantity is then exactly
// computable from the gradient and the compressor's reconstruction.
core::FidelitySample probe_one(const core::GraceConfig& cfg,
                               const Tensor& grad) {
  struct Capture final : core::ExchangeProbe {
    std::vector<core::FidelitySample> samples;
    void on_sample(const core::FidelitySample& s) override {
      samples.push_back(s);
    }
  } capture;
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  core::GraceWorker worker(cfg, world.comm(0), net, /*rng_seed=*/7);
  worker.set_probe(&capture);
  worker.exchange(grad, "g");
  EXPECT_EQ(capture.samples.size(), 1u);
  return capture.samples.empty() ? core::FidelitySample{} : capture.samples[0];
}

TEST(FidelityProbe, IdentityCompressionIsLossless) {
  core::GraceConfig cfg;
  cfg.compressor_spec = "none";
  Tensor g = Tensor::from(std::vector<float>{1.0f, -2.0f, 0.5f, 3.0f});
  const core::FidelitySample s = probe_one(cfg, g);
  EXPECT_EQ(s.numel, 4);
  EXPECT_EQ(s.dense_bits, 128u);
  EXPECT_EQ(s.wire_bits, 128u);
  EXPECT_DOUBLE_EQ(s.compression_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.l2_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(s.cosine_similarity, 1.0);
  EXPECT_DOUBLE_EQ(s.sign_agreement, 1.0);
  EXPECT_DOUBLE_EQ(s.residual_l2, 0.0);  // EF off for "none"
  EXPECT_NEAR(s.grad_l2, std::sqrt(1.0 + 4.0 + 0.25 + 9.0), 1e-6);
}

TEST(FidelityProbe, TopkMeasuresDroppedMassExactly) {
  core::GraceConfig cfg;
  cfg.compressor_spec = "topk(0.25)";
  cfg.error_feedback = false;
  // Top-1 of 4 keeps the 8.0; the rest is reconstruction error.
  Tensor g = Tensor::from(std::vector<float>{8.0f, 0.1f, -0.2f, 0.05f});
  const core::FidelitySample s = probe_one(cfg, g);
  // topk stores (index, value) pairs at 64 bits each: 128 dense / 64 wire.
  EXPECT_DOUBLE_EQ(s.compression_ratio, 2.0);
  const double xx = 64.0 + 0.01 + 0.04 + 0.0025;
  const double d2 = 0.01 + 0.04 + 0.0025;
  EXPECT_NEAR(s.l2_rel_error, std::sqrt(d2 / xx), 1e-9);
  EXPECT_NEAR(s.cosine_similarity, 64.0 / (std::sqrt(xx) * 8.0), 1e-9);
  // Only the kept coordinate agrees in sign (zeros disagree with nonzeros).
  EXPECT_DOUBLE_EQ(s.sign_agreement, 0.25);
  EXPECT_DOUBLE_EQ(s.residual_l2, 0.0);  // EF explicitly off
}

TEST(FidelityProbe, ErrorFeedbackResidualNormMatchesReconstructionGap) {
  core::GraceConfig cfg;
  cfg.compressor_spec = "topk(0.25)";
  cfg.error_feedback = true;
  Tensor g = Tensor::from(std::vector<float>{8.0f, 0.1f, -0.2f, 0.05f});
  const core::FidelitySample s = probe_one(cfg, g);
  // The EF residual after update is exactly phi - Q^-1(Q(phi)), so its norm
  // factors as rel_error * ||phi||.
  EXPECT_GT(s.residual_l2, 0.0);
  EXPECT_NEAR(s.residual_l2, s.l2_rel_error * s.grad_l2, 1e-9);
}

TEST(FidelityProbe, SignCompressionAgreesInSignEverywhere) {
  core::GraceConfig cfg;
  cfg.compressor_spec = "signsgd";
  cfg.error_feedback = false;
  Tensor g(DType::F32, Shape{{64}});
  Rng rng(11);
  rng.fill_normal(g.f32(), 0.0f, 1.0f);
  const core::FidelitySample s = probe_one(cfg, g);
  EXPECT_DOUBLE_EQ(s.sign_agreement, 1.0);  // signs survive by construction
  EXPECT_GT(s.cosine_similarity, 0.0);
  EXPECT_GT(s.l2_rel_error, 0.0);       // magnitudes do not
  EXPECT_GT(s.compression_ratio, 30.0); // 32 bits -> 1 bit
}

TEST(FidelityProbe, AccumulatesPerTensorAcrossRanksDeterministically) {
  CompressionFidelityProbe probe(/*n_ranks=*/2);
  core::GraceConfig cfg;
  cfg.compressor_spec = "topk(0.5)";
  cfg.error_feedback = false;
  comm::World world(2);
  comm::NetworkModel net;
  net.n_workers = 2;
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      core::GraceWorker worker(cfg, world.comm(rank), net,
                               static_cast<uint64_t>(rank) + 1);
      worker.set_probe(&probe);
      Tensor g = Tensor::full(Shape{{8}}, static_cast<float>(rank + 1));
      for (int step = 0; step < 3; ++step) {
        worker.exchange(g, "w", /*stats=*/nullptr);
        worker.exchange(g, "b", /*stats=*/nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(probe.samples(), 12);  // 2 ranks x 2 tensors x 3 steps
  const auto summaries = probe.summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "w");  // first-exchanged order
  EXPECT_EQ(summaries[1].name, "b");
  for (const auto& s : summaries) {
    EXPECT_EQ(s.samples, 6);
    EXPECT_EQ(s.numel, 8);
    EXPECT_GT(s.compression_ratio, 0.0);
  }
}

// --- Trainer integration ----------------------------------------------------

struct TinyRun {
  TrainConfig cfg;
  ReplicaFactory factory;
};

TinyRun tiny_run(int workers = 2) {
  data::ImageConfig dc;
  dc.n_train = 64;
  dc.n_test = 20;
  auto data = std::make_shared<const data::ImageDataset>(data::make_images(dc));
  TinyRun r;
  r.factory = [data](uint64_t seed) {
    return std::make_unique<models::CnnSmall>(data, seed);
  };
  r.cfg.n_workers = workers;
  r.cfg.net.n_workers = workers;
  r.cfg.batch_per_worker = 8;
  r.cfg.epochs = 1;
  r.cfg.grace.compressor_spec = "topk(0.1)";
  return r;
}

TEST(FidelityTrainer, SamplesEveryKthIterationPerTensorPerRank) {
  TinyRun r = tiny_run();
  CompressionFidelityProbe probe(r.cfg.n_workers, /*every_k=*/2);
  r.cfg.fidelity = &probe;
  RunResult run = train(r.factory, r.cfg);

  // 64 samples / (2 workers x 8) = 4 iterations; every_k=2 samples
  // iterations 0 and 2.
  const int64_t sampled_iters = 2;
  ASSERT_EQ(static_cast<int64_t>(run.fidelity.size()), run.gradient_tensors);
  for (const auto& t : run.fidelity) {
    EXPECT_EQ(t.samples, sampled_iters * r.cfg.n_workers) << t.name;
    EXPECT_GT(t.compression_ratio, 1.0) << t.name;  // topk compresses
    EXPECT_GT(t.l2_rel_error, 0.0) << t.name;
    EXPECT_GT(t.cosine_similarity, 0.0) << t.name;
    EXPECT_LE(t.cosine_similarity, 1.0) << t.name;
    EXPECT_GT(t.sign_agreement, 0.0) << t.name;
    EXPECT_GT(t.mean_wire_bits, 0.0) << t.name;
  }
  EXPECT_EQ(probe.samples(),
            sampled_iters * r.cfg.n_workers * run.gradient_tensors);
}

TEST(FidelityTrainer, ProbeAndMetricsDoNotPerturbTraining) {
  TinyRun plain = tiny_run();
  RunResult base = train(plain.factory, plain.cfg);

  TinyRun instrumented = tiny_run();
  CompressionFidelityProbe probe(instrumented.cfg.n_workers, /*every_k=*/1);
  MetricRegistry registry(instrumented.cfg.n_workers);
  instrumented.cfg.fidelity = &probe;
  instrumented.cfg.metrics = &registry;
  RunResult observed = train(instrumented.factory, instrumented.cfg);

  ASSERT_EQ(base.epochs.size(), observed.epochs.size());
  for (size_t e = 0; e < base.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(base.epochs[e].train_loss, observed.epochs[e].train_loss);
    EXPECT_DOUBLE_EQ(base.epochs[e].quality, observed.epochs[e].quality);
  }
  EXPECT_DOUBLE_EQ(base.wire_bytes_per_iter, observed.wire_bytes_per_iter);
  // Uninstrumented runs surface nothing.
  EXPECT_TRUE(base.fidelity.empty());
  EXPECT_TRUE(base.metric_counters.empty());
  EXPECT_TRUE(base.metric_histograms.empty());
}

TEST(FidelityTrainer, MetricsCoverEveryExchange) {
  TinyRun r = tiny_run();
  MetricRegistry registry(r.cfg.n_workers);
  r.cfg.metrics = &registry;
  RunResult run = train(r.factory, r.cfg);

  // 4 iterations x 2 ranks x gradient_tensors exchanges in total.
  const uint64_t exchanges =
      4u * 2u * static_cast<uint64_t>(run.gradient_tensors);
  ASSERT_FALSE(run.metric_counters.empty());
  EXPECT_EQ(run.metric_counters[0].name, "exchange.count");  // sorted
  EXPECT_EQ(run.metric_counters[0].value, exchanges);

  bool saw_sizes = false;
  for (const auto& h : run.metric_histograms) {
    EXPECT_EQ(h.count, exchanges) << h.name;
    uint64_t in_buckets = 0;
    for (uint64_t b : h.buckets) in_buckets += b;
    EXPECT_EQ(in_buckets, h.count) << h.name;
    EXPECT_LE(h.min, h.max) << h.name;
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99)) << h.name;
    if (h.name == "exchange.wire_bytes") {
      saw_sizes = true;
      EXPECT_GT(h.min, 0.0);
    }
  }
  EXPECT_TRUE(saw_sizes);
}

// --- MetricRegistry unit behavior -------------------------------------------

TEST(MetricRegistry, Log2BucketBoundaries) {
  EXPECT_EQ(histogram_bucket(0.0), 0);
  EXPECT_EQ(histogram_bucket(-5.0), 0);
  EXPECT_EQ(histogram_bucket(0.99), 0);
  EXPECT_EQ(histogram_bucket(1.0), 1);
  EXPECT_EQ(histogram_bucket(1.99), 1);
  EXPECT_EQ(histogram_bucket(2.0), 2);
  EXPECT_EQ(histogram_bucket(3.9), 2);
  EXPECT_EQ(histogram_bucket(4.0), 3);
  EXPECT_EQ(histogram_bucket(1024.0), 11);
  EXPECT_EQ(histogram_bucket(1.0e300), kHistogramBuckets - 1);
}

TEST(MetricRegistry, MergesRanksDeterministically) {
  MetricRegistry a(3);
  MetricRegistry b(3);
  // Same samples delivered with ranks in different orders: the merged
  // snapshots must be identical because the merge folds ranks 0..n-1.
  for (int rank : {0, 1, 2}) {
    a.inc(rank, "ops", static_cast<uint64_t>(rank) + 1);
    a.observe(rank, "lat", std::ldexp(1.0, rank));  // 1, 2, 4
  }
  for (int rank : {2, 0, 1}) {
    b.inc(rank, "ops", static_cast<uint64_t>(rank) + 1);
    b.observe(rank, "lat", std::ldexp(1.0, rank));
  }
  const auto ca = a.counters();
  const auto cb = b.counters();
  ASSERT_EQ(ca.size(), 1u);
  EXPECT_EQ(ca[0].value, 6u);
  EXPECT_EQ(cb[0].value, 6u);
  const auto ha = a.histograms();
  const auto hb = b.histograms();
  ASSERT_EQ(ha.size(), 1u);
  EXPECT_EQ(ha[0].count, 3u);
  EXPECT_DOUBLE_EQ(ha[0].sum, hb[0].sum);
  EXPECT_DOUBLE_EQ(ha[0].min, 1.0);
  EXPECT_DOUBLE_EQ(ha[0].max, 4.0);
  EXPECT_EQ(ha[0].buckets, hb[0].buckets);
  // 1 -> bucket 1, 2 -> bucket 2, 4 -> bucket 3.
  EXPECT_EQ(ha[0].buckets[1], 1u);
  EXPECT_EQ(ha[0].buckets[2], 1u);
  EXPECT_EQ(ha[0].buckets[3], 1u);
}

TEST(MetricRegistry, PercentilesRespectTheEnvelope) {
  MetricRegistry reg(1);
  for (int i = 0; i < 1000; ++i) {
    reg.observe(0, "v", 10.0);  // tight distribution...
  }
  reg.observe(0, "v", 100000.0);  // ...with one outlier
  const auto h = reg.histograms();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_GE(h[0].percentile(0.0), h[0].min);
  EXPECT_DOUBLE_EQ(h[0].percentile(1.0), 100000.0);
  // p50 lands in the bucket holding 10.0 ([8,16), midpoint ~11.3).
  EXPECT_GT(h[0].percentile(0.5), 8.0);
  EXPECT_LT(h[0].percentile(0.5), 16.0);
  // p99 must not be dragged to the outlier by 0.1% of samples.
  EXPECT_LT(h[0].percentile(0.99), 16.0);
}

// --- JSON surfaces -----------------------------------------------------------

TEST(FidelityJson, RunResultWithFidelityAndMetricsParses) {
  TinyRun r = tiny_run();
  CompressionFidelityProbe probe(r.cfg.n_workers);
  MetricRegistry registry(r.cfg.n_workers);
  r.cfg.fidelity = &probe;
  r.cfg.metrics = &registry;
  RunResult run = train(r.factory, r.cfg);

  const std::string json = run_result_json(run);
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  for (const char* key :
       {"fidelity", "compression_ratio", "l2_rel_error", "cosine_similarity",
        "sign_agreement", "residual_l2", "metrics", "counters", "histograms",
        "p50", "p99", "buckets"}) {
    EXPECT_TRUE(checker.keys().count(key)) << "missing key: " << key;
  }
}

TEST(FidelityJson, BenchDocumentShapeParses) {
  // The exact wrapper bench_fidelity writes around run_result_json; the
  // strict checker validating it here is the ctest stand-in for validating
  // BENCH_fidelity.json itself.
  TinyRun r = tiny_run();
  CompressionFidelityProbe probe(r.cfg.n_workers);
  r.cfg.fidelity = &probe;
  RunResult run = train(r.factory, r.cfg);

  std::string doc = "{\"benchmark\":\"fidelity\",\"scale\":0.1,\"every_k\":1,"
                    "\"runs\":[{\"compressor\":\"topk(0.1)\",\"result\":";
  doc += run_result_json(run);
  doc += "}]}";
  JsonChecker checker(doc);
  ASSERT_TRUE(checker.parse()) << doc;
  EXPECT_TRUE(checker.keys().count("benchmark"));
  EXPECT_TRUE(checker.keys().count("compressor"));
  EXPECT_TRUE(checker.keys().count("fidelity"));
}

TEST(ChromeTrace, ExportIsValidTraceEventJson) {
  TinyRun r = tiny_run();
  Trace trace(r.cfg.n_workers);
  r.cfg.trace = &trace;
  train(r.factory, r.cfg);

  const std::string json = trace_chrome_json(trace);
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse());
  for (const char* key : {"traceEvents", "displayTimeUnit", "ph", "pid",
                          "tid", "name", "ts", "dur", "cat", "args"}) {
    EXPECT_TRUE(checker.keys().count(key)) << "missing key: " << key;
  }
  // Both ranks become named tracks and every phase appears as a slice.
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  for (const char* phase : {"forward", "backward", "compress", "comm",
                            "decompress", "optimizer"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
}

TEST(ChromeTrace, LaysEventsEndToEndPerRank) {
  Trace trace(2, 8);
  trace.record(0, TraceEvent{0, 0, 0, Phase::Forward, -1, 1.0, 0});
  trace.record(0, TraceEvent{0, 0, 0, Phase::Backward, -1, 2.0, 0});
  trace.record(1, TraceEvent{0, 0, 1, Phase::Forward, -1, 0.5, 0});
  const std::string json = trace_chrome_json(trace);
  JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  // Rank 0's second slice starts where the first ended (1 s = 1e6 us);
  // rank 1's cursor is independent and starts at 0.
  EXPECT_NE(json.find("\"ts\":1000000,\"dur\":2000000"), std::string::npos)
      << json;
  const size_t rank1 = json.find("\"tid\":1,\"name\":\"forward\"");
  ASSERT_NE(rank1, std::string::npos);
  EXPECT_NE(json.find("\"ts\":0,\"dur\":500000", rank1), std::string::npos);
}

}  // namespace
}  // namespace grace::sim
