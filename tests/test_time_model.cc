// Simulated-time model arithmetic.
#include <gtest/gtest.h>

#include "sim/time_model.h"

namespace grace::sim {
namespace {

TEST(TimeModel, ComputeSecondsFormula) {
  TimeModel tm;
  tm.device_flops = 1e9;
  tm.backward_factor = 2.0;
  // 1 MFLOP forward x (1 + 2) x batch 10 / 1 GFLOP/s = 30 ms.
  EXPECT_DOUBLE_EQ(tm.compute_seconds(1e6, 10), 0.03);
}

TEST(TimeModel, FasterDeviceIsFaster) {
  TimeModel slow, fast;
  slow.device_flops = 1e9;
  fast.device_flops = 1e12;
  EXPECT_GT(slow.compute_seconds(1e6, 8), fast.compute_seconds(1e6, 8));
}

TEST(TimeModel, BackwardFactorScales) {
  TimeModel tm;
  tm.backward_factor = 0.0;  // forward only
  const double fwd = tm.compute_seconds(1e6, 1);
  tm.backward_factor = 2.0;
  EXPECT_DOUBLE_EQ(tm.compute_seconds(1e6, 1), 3.0 * fwd);
}

TEST(TimeModel, ZeroBatchIsFree) {
  TimeModel tm;
  EXPECT_DOUBLE_EQ(tm.compute_seconds(1e6, 0), 0.0);
}

}  // namespace
}  // namespace grace::sim
