// Run reports (sim/report.h): scoreboard construction, deterministic
// serialization, the health detectors, and the regression-diff verdict —
// including the CI contract that a diff passes against a fresh same-seed
// rerun but fails on an injected slowdown or a vanished metric.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "json_checker.h"
#include "sim/critical_path.h"
#include "sim/metric_registry.h"
#include "sim/report.h"
#include "sim/tasks.h"
#include "sim/trainer.h"

namespace grace::sim {
namespace {

Benchmark tiny_cnn() { return make_cnn_classification(0.1); }

TrainConfig tiny_config(const Benchmark& b, int workers = 4) {
  TrainConfig cfg = default_config(b);
  cfg.n_workers = workers;
  cfg.net.n_workers = workers;
  cfg.epochs = 2;
  return cfg;
}

const ReportMetric* find_metric(const RunReport& r, std::string_view name) {
  for (const ReportMetric& m : r.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool has_flag(const RunReport& r, std::string_view name) {
  for (const HealthFlag& f : r.flags) {
    if (f.name == name) return true;
  }
  return false;
}

TEST(RunReport, CarriesTheScoreboardAndSerializesDeterministically) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.01)";
  MetricRegistry registry(cfg.n_workers);
  CriticalPathCollector collector(cfg.n_workers);
  cfg.metrics = &registry;
  cfg.critical_path = &collector;
  const RunResult run = train(b.factory, cfg);

  const RunReport report = build_run_report(run, {}, &registry);
  EXPECT_EQ(report.model, run.model);
  EXPECT_EQ(report.compressor, "topk(0.01)");
  EXPECT_TRUE(report.critical_path.collected);

  // The scoreboard rows a diff consumer depends on.
  for (const char* name :
       {"parameters_crc32", "replicas_in_sync", "comm_messages",
        "wire_bytes_per_iter", "iteration_seconds", "final_quality",
        "critical_path.compute_share", "whatif.infinite_bandwidth.speedup",
        "health.flags"}) {
    EXPECT_NE(find_metric(report, name), nullptr) << name;
  }
  EXPECT_EQ(find_metric(report, "health.flags")->value,
            static_cast<double>(report.flags.size()));

  // The JSON is a pure function of the report: parse-clean, stable keys,
  // byte-identical on re-serialization.
  const std::string json = run_report_json(report);
  testing::JsonChecker checker(json);
  ASSERT_TRUE(checker.parse()) << json;
  for (const char* key : {"schema", "model", "compressor", "topology",
                          "quality_metric", "overlap", "metrics", "flags",
                          "critical_path"}) {
    EXPECT_TRUE(checker.keys().count(key)) << key;
  }
  EXPECT_EQ(json, run_report_json(report));

  // The human summary mentions the essentials without throwing.
  const std::string text = run_report_text(report);
  EXPECT_NE(text.find("run report"), std::string::npos);
  EXPECT_NE(text.find("topk(0.01)"), std::string::npos);
}

TEST(RunReport, SameSeedRunsAgreeOnDeterministicMetricsAndPassTheDiff) {
  // The simulated side of the hybrid time accounting is a pure function of
  // the seed, so those scoreboard rows must match bitwise across reruns;
  // only the measured codec timings may drift, and the diff rules absorb
  // exactly that drift — a same-seed rerun must produce a PASS verdict.
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "qsgd(64)";
  CriticalPathCollector c1(cfg.n_workers), c2(cfg.n_workers);
  cfg.critical_path = &c1;
  const RunResult r1 = train(b.factory, cfg);
  cfg.critical_path = &c2;
  const RunResult r2 = train(b.factory, cfg);
  const RunReport a = build_run_report(r1);
  const RunReport bb = build_run_report(r2);

  for (const char* name :
       {"parameters_crc32", "replicas_in_sync", "model_parameters",
        "gradient_tensors", "buckets_per_iter", "epochs", "samples_per_epoch",
        "comm_messages", "comm_payload_bytes", "wire_bytes_per_iter",
        "compute_seconds", "comm_seconds", "optimizer_seconds",
        "stall_seconds", "final_quality", "best_quality",
        "critical_path.iterations", "health.flags"}) {
    const ReportMetric* ma = find_metric(a, name);
    const ReportMetric* mb = find_metric(bb, name);
    ASSERT_NE(ma, nullptr) << name;
    ASSERT_NE(mb, nullptr) << name;
    EXPECT_EQ(ma->value, mb->value) << name;
  }

  const ReportDiff diff = diff_reports(run_report_json(a), run_report_json(bb));
  EXPECT_TRUE(diff.pass) << report_diff_text(diff);
  EXPECT_TRUE(diff.failures.empty());
  EXPECT_FALSE(diff.deltas.empty());
}

TEST(RunReport, StragglerRunRaisesHealthFlags) {
  Benchmark b = tiny_cnn();
  faults::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_rank = 2;
  spec.straggler_delay_s = 0.05;  // dwarfs the sub-ms iteration
  const faults::FaultPlan plan(spec);
  TrainConfig cfg = tiny_config(b);
  cfg.faults = &plan;
  MetricRegistry registry(cfg.n_workers);
  cfg.metrics = &registry;
  const RunResult run = train(b.factory, cfg);

  const RunReport report = build_run_report(run, {}, &registry);
  EXPECT_TRUE(has_flag(report, "stall_share"));
  // Only rank 2 stalls, so the per-rank series single it out.
  EXPECT_TRUE(has_flag(report, "straggler_outlier"));
  EXPECT_GE(report.flags.size(), 2u);

  // Verdicts are mirrored into the registry as health counters.
  bool saw_count = false, saw_flag = false;
  for (const CounterSnapshot& c : registry.counters()) {
    if (c.name == "health.flags") saw_count = c.value == report.flags.size();
    if (c.name == "health.flag.straggler_outlier") saw_flag = c.value == 1;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_flag);
}

TEST(RunReport, SyntheticSignalsTripEveryDetector) {
  RunResult result;
  result.model = "synthetic";
  result.iteration_s = 1.0;
  result.phases.stall_s = 0.2;         // stall_share 20% > 5%
  result.comm_messages = 100;
  result.faults.retries = 20;          // retry_storm 20% > 10%
  TensorFidelitySummary fid;
  fid.name = "g";
  fid.samples = 5;
  fid.cosine_similarity = 0.5;         // below the 0.70 floor
  fid.sign_agreement = 0.5;            // below the 0.60 floor
  result.fidelity.push_back(fid);
  result.overlap_enabled = true;
  result.compress_s = 0.2;
  result.comm_s = 0.3;                 // 50% exchange share...
  result.overlap_fraction = 0.01;      // ...but only 1% recovered

  const RunReport report = build_run_report(result);
  EXPECT_TRUE(has_flag(report, "stall_share"));
  EXPECT_TRUE(has_flag(report, "retry_storm"));
  EXPECT_TRUE(has_flag(report, "fidelity_collapse"));
  EXPECT_TRUE(has_flag(report, "overlap_regression"));
  EXPECT_EQ(find_metric(report, "health.flags")->value, 4.0);

  // The same signals under lenient thresholds raise nothing: the verdicts
  // are the thresholds', not hard-coded.
  ReportOptions lenient;
  lenient.stall_share = 0.5;
  lenient.retry_storm_ratio = 0.5;
  lenient.min_cosine = 0.1;
  lenient.min_sign_agreement = 0.1;
  lenient.min_overlap_fraction = 0.001;
  const RunReport quiet = build_run_report(result, lenient);
  EXPECT_TRUE(quiet.flags.empty());
  EXPECT_EQ(find_metric(quiet, "health.flags")->value, 0.0);
}

TEST(RunReport, DiffPassesOnItself) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  CriticalPathCollector collector(cfg.n_workers);
  cfg.critical_path = &collector;
  const RunResult run = train(b.factory, cfg);
  const std::string json = run_report_json(build_run_report(run));

  const ReportDiff diff = diff_reports(json, json);
  EXPECT_TRUE(diff.pass);
  EXPECT_TRUE(diff.failures.empty());
  ASSERT_FALSE(diff.deltas.empty());
  for (const MetricDelta& d : diff.deltas) {
    EXPECT_FALSE(d.failed) << d.name;
    EXPECT_EQ(d.delta, 0.0) << d.name;
  }
}

TEST(RunReport, DiffFailsOnInjectedSlowdown) {
  // The chaos drill behind the bench_report_check gate: scale the measured
  // codec pricing 1000x and the loose measured-timing rules must still
  // trip.
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.01)";
  CriticalPathCollector c1(cfg.n_workers), c2(cfg.n_workers);
  cfg.critical_path = &c1;
  const RunResult baseline = train(b.factory, cfg);
  cfg.time.compression_time_scale *= 1000.0;
  cfg.critical_path = &c2;
  const RunResult slowed = train(b.factory, cfg);

  const ReportDiff diff =
      diff_reports(run_report_json(build_run_report(baseline)),
                   run_report_json(build_run_report(slowed)));
  EXPECT_FALSE(diff.pass);
  ASSERT_FALSE(diff.failures.empty());
  bool timing_failed = false;
  for (const MetricDelta& d : diff.deltas) {
    if (d.failed && (d.name == "iteration_seconds" ||
                     d.name == "compress_seconds" ||
                     d.name == "total_sim_seconds")) {
      timing_failed = true;
    }
  }
  EXPECT_TRUE(timing_failed);
}

TEST(RunReport, VanishedBaselineMetricFailsUnknownMetricIsANote) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.epochs = 1;
  const RunResult run = train(b.factory, cfg);
  const std::string json = run_report_json(build_run_report(run));

  // Rename one metric: the baseline's row vanishes from the current report
  // (fail) and an unknown row appears (note, not fail).
  std::string renamed = json;
  const size_t at = renamed.find("\"comm_messages\"");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 15, "\"comm_messagesX\"");

  const ReportDiff diff = diff_reports(json, renamed);
  EXPECT_FALSE(diff.pass);
  bool missing_reported = false;
  for (const std::string& f : diff.failures) {
    if (f.find("comm_messages") != std::string::npos) missing_reported = true;
  }
  EXPECT_TRUE(missing_reported);
  bool unknown_noted = false;
  for (const std::string& n : diff.notes) {
    if (n.find("comm_messagesX") != std::string::npos) unknown_noted = true;
  }
  EXPECT_TRUE(unknown_noted);

  // The reverse direction only gains a metric: that is a note, not a
  // regression.
  const ReportDiff gained = diff_reports(renamed, json);
  EXPECT_FALSE(gained.pass);  // comm_messagesX vanished in this direction
}

TEST(RunReport, FlagChangesAreNotesNotFailures) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.epochs = 1;
  const RunResult run = train(b.factory, cfg);
  const RunReport clean = build_run_report(run);
  RunReport flagged = clean;
  flagged.flags.push_back(
      HealthFlag{"synthetic_flag", "injected by the test", 2.0, 1.0});

  const ReportDiff raised =
      diff_reports(run_report_json(clean), run_report_json(flagged));
  EXPECT_TRUE(raised.pass) << report_diff_text(raised);
  bool noted = false;
  for (const std::string& n : raised.notes) {
    if (n.find("raised") != std::string::npos &&
        n.find("synthetic_flag") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);

  const ReportDiff cleared =
      diff_reports(run_report_json(flagged), run_report_json(clean));
  EXPECT_TRUE(cleared.pass);
  bool cleared_noted = false;
  for (const std::string& n : cleared.notes) {
    if (n.find("cleared") != std::string::npos) cleared_noted = true;
  }
  EXPECT_TRUE(cleared_noted);
}

}  // namespace
}  // namespace grace::sim
