// Alpha-beta network cost model sanity and monotonicity.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "comm/network_model.h"

namespace grace::comm {
namespace {

NetworkModel base() {
  NetworkModel net;
  net.n_workers = 8;
  net.bandwidth_gbps = 10.0;
  net.transport = Transport::Tcp;
  return net;
}

TEST(NetworkModel, SingleWorkerIsFree) {
  NetworkModel net = base();
  net.n_workers = 1;
  EXPECT_EQ(net.allreduce_seconds(1 << 20), 0.0);
  EXPECT_EQ(net.allgather_seconds(1 << 20, 0), 0.0);
  EXPECT_EQ(net.broadcast_seconds(1 << 20), 0.0);
}

TEST(NetworkModel, MoreBytesTakeLonger) {
  NetworkModel net = base();
  EXPECT_LT(net.allreduce_seconds(1 << 10), net.allreduce_seconds(1 << 24));
  EXPECT_LT(net.allgather_seconds(1 << 10, 7 << 10),
            net.allgather_seconds(1 << 24, 7ull << 24));
}

TEST(NetworkModel, FasterLinksAreFaster) {
  NetworkModel slow = base(), fast = base();
  slow.bandwidth_gbps = 1.0;
  fast.bandwidth_gbps = 25.0;
  EXPECT_GT(slow.allreduce_seconds(10 << 20), fast.allreduce_seconds(10 << 20));
}

TEST(NetworkModel, RdmaBeatsTcpAtEqualBandwidth) {
  NetworkModel tcp = base(), rdma = base();
  rdma.transport = Transport::Rdma;
  for (size_t bytes : {1024u, 1u << 20, 1u << 26}) {
    EXPECT_GT(tcp.allreduce_seconds(bytes), rdma.allreduce_seconds(bytes));
    EXPECT_GT(tcp.allgather_seconds(bytes, 7 * bytes),
              rdma.allgather_seconds(bytes, 7 * bytes));
  }
}

TEST(NetworkModel, LargeTransferApproachesWireRate) {
  NetworkModel net = base();
  const size_t bytes = 1ull << 30;  // 1 GiB
  // Ring allreduce moves 2(n-1)/n * bytes per rank.
  const double ideal = 2.0 * 7.0 / 8.0 * static_cast<double>(bytes) /
                       net.effective_bytes_per_sec();
  const double modeled = net.allreduce_seconds(bytes);
  EXPECT_NEAR(modeled, ideal, ideal * 0.05);  // latency amortized away
}

TEST(NetworkModel, SmallTransferDominatedByOverhead) {
  NetworkModel net = base();
  const double t1 = net.allreduce_seconds(64);
  const double t2 = net.allreduce_seconds(128);
  // Doubling a tiny payload barely changes the time.
  EXPECT_LT((t2 - t1) / t1, 0.01);
}

TEST(NetworkModel, AllgatherScalesWithPeerPayloads) {
  NetworkModel net = base();
  const double few = net.allgather_seconds(1 << 10, 7 << 10);
  const double many = net.allgather_seconds(1 << 10, 7 << 20);
  EXPECT_GT(many, few);
}

TEST(NetworkModel, AllgatherChargesLatencyPerRingStep) {
  // Regression: the ring allgather runs n-1 sequential steps
  // (comm/collectives.cc), so each step must pay the link latency — the
  // model used to charge it once, making high-latency allgather
  // impossibly fast.
  NetworkModel lo = base(), hi = base();
  lo.latency_us = 0.0;
  hi.latency_us = 500.0;
  const size_t mine = 1 << 10;
  const size_t others = 7 << 10;
  const double delta =
      hi.allgather_seconds(mine, others) - lo.allgather_seconds(mine, others);
  const double n_minus_1 = static_cast<double>(hi.n_workers - 1);
  EXPECT_NEAR(delta, n_minus_1 * hi.latency_us * 1e-6, 1e-12);
}

TEST(NetworkModel, HighLatencyRegimePinsStepRatio) {
  // With latency >> wire time, collectives degenerate to steps x latency:
  // allreduce runs 2(n-1) ring steps, allgather n-1, so their ratio
  // approaches 2 regardless of payload.
  NetworkModel net = base();
  net.latency_us = 50000.0;  // 50 ms — dwarfs the microsecond wire times
  const size_t bytes = 1 << 10;
  const double ratio = net.allreduce_seconds(bytes) /
                       net.allgather_seconds(bytes, 7 * bytes);
  EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(NetworkModel, BroadcastChargesLatencyOnce) {
  // Flat fan-out has no sequential hops: the root's serialized sends all
  // propagate independently, so raising the latency shifts completion by
  // exactly one latency, not n-1 of them.
  NetworkModel lo = base(), hi = base();
  lo.latency_us = 0.0;
  hi.latency_us = 500.0;
  const double delta =
      hi.broadcast_seconds(1 << 20) - lo.broadcast_seconds(1 << 20);
  EXPECT_NEAR(delta, hi.latency_us * 1e-6, 1e-12);
}

TEST(NetworkModel, ValidateAcceptsDefaultsAndBase) {
  EXPECT_NO_THROW(NetworkModel{}.validate());
  EXPECT_NO_THROW(base().validate());
}

TEST(NetworkModel, ValidateRejectsBadFields) {
  // Regression: a zero-bandwidth model used to divide by zero and poison
  // every downstream cost with inf/nan instead of failing loudly.
  NetworkModel net = base();
  net.n_workers = 0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net = base();
  net.bandwidth_gbps = 0.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.bandwidth_gbps = -1.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.bandwidth_gbps = std::numeric_limits<double>::infinity();
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.bandwidth_gbps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net = base();
  net.latency_us = -0.5;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.latency_us = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(net.validate(), std::invalid_argument);
}

TEST(NetworkModel, Names) {
  EXPECT_EQ(transport_name(Transport::Tcp), "TCP");
  EXPECT_EQ(transport_name(Transport::Rdma), "RDMA");
  NetworkModel net = base();
  EXPECT_NE(net.to_string().find("10"), std::string::npos);
  EXPECT_NE(net.to_string().find("TCP"), std::string::npos);
}

}  // namespace
}  // namespace grace::comm
