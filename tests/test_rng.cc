// Deterministic RNG behaviour and statistical sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tensor/rng.h"

namespace grace {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(5);
  auto idx = rng.sample_indices(100, 20);
  ASSERT_EQ(idx.size(), 20u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  std::set<int32_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int32_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(Rng, SampleIndicesKEqualsN) {
  Rng rng(5);
  auto idx = rng.sample_indices(8, 8);
  ASSERT_EQ(idx.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(idx[static_cast<size_t>(i)], i);
}

TEST(Rng, SampleIndicesKLargerThanNClamps) {
  Rng rng(5);
  EXPECT_EQ(rng.sample_indices(4, 100).size(), 4u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(9);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent2(9);
  parent2.split();
  EXPECT_NE(child.next_u64(), parent2.next_u64() + 1);  // smoke: no aliasing crash
}

TEST(Rng, FillNormalWritesEveryElement) {
  Rng rng(13);
  std::vector<float> v(64, 1e9f);
  rng.fill_normal(v, 0.0f, 1.0f);
  for (float x : v) EXPECT_LT(std::abs(x), 10.0f);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int64_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(std::span<int64_t>(v));
  std::vector<int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace grace
