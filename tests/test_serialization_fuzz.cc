// Property/fuzz testing of CompressedTensor serialization with randomized
// payload structures, and of every compressor's serialize-transport-
// decompress path under randomized shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/compressed.h"
#include "core/registry.h"
#include "tensor/rng.h"

namespace grace::core {
namespace {

Tensor random_part(Rng& rng) {
  const auto dtype = static_cast<DType>(rng.uniform_int(3));
  const int rank = static_cast<int>(rng.uniform_int(3));
  std::vector<int64_t> dims;
  for (int i = 0; i < rank; ++i) dims.push_back(1 + rng.uniform_int(8));
  Tensor t(dtype, Shape(std::move(dims)));
  for (auto& b : t.bytes()) b = static_cast<std::byte>(rng.uniform_int(256));
  return t;
}

TEST(SerializationFuzz, RandomStructuresRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    CompressedTensor ct;
    const auto n_parts = rng.uniform_int(5);
    for (int64_t p = 0; p < n_parts; ++p) ct.parts.push_back(random_part(rng));
    std::vector<int64_t> dims;
    for (int64_t i = 0; i < rng.uniform_int(4); ++i) dims.push_back(rng.uniform_int(6));
    ct.ctx.shape = Shape(std::move(dims));
    for (int64_t i = 0; i < rng.uniform_int(6); ++i) {
      ct.ctx.scalars.push_back(static_cast<float>(rng.normal()));
    }
    for (int64_t i = 0; i < rng.uniform_int(6); ++i) {
      ct.ctx.ints.push_back(static_cast<int64_t>(rng.next_u64()));
    }
    ct.ctx.wire_bits = rng.next_u64() % (1ull << 40);

    CompressedTensor back = deserialize(serialize(ct));
    ASSERT_EQ(back.parts.size(), ct.parts.size());
    for (size_t p = 0; p < ct.parts.size(); ++p) {
      ASSERT_EQ(back.parts[p].dtype(), ct.parts[p].dtype());
      ASSERT_EQ(back.parts[p].shape(), ct.parts[p].shape());
      const auto a = ct.parts[p].bytes();
      const auto b = back.parts[p].bytes();
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
    ASSERT_EQ(back.ctx, ct.ctx);
  }
}

TEST(SerializationFuzz, EverySingleBitFlipIsDetected) {
  // The CRC32 trailer (util/crc32.h) guarantees detection of every
  // single-bit error; exercise the guarantee exhaustively on a ~100-byte
  // frame — every flipped bit must make deserialize throw rather than
  // silently hand damaged parts to an aggregator.
  Rng rng(42);
  CompressedTensor ct;
  Tensor part(DType::F32, Shape({16}));
  for (auto& b : part.bytes()) b = static_cast<std::byte>(rng.uniform_int(256));
  ct.parts.push_back(std::move(part));
  ct.ctx.shape = Shape({16});
  ct.ctx.scalars = {0.5f};
  ct.ctx.wire_bits = 128;

  const Tensor blob = serialize(ct);
  ASSERT_TRUE(blob.size_bytes() > 0);
  for (size_t bit = 0; bit < blob.size_bytes() * 8; ++bit) {
    Tensor damaged = blob;
    damaged.bytes()[bit / 8] ^= std::byte{1} << (bit % 8);
    EXPECT_THROW(deserialize(damaged), std::runtime_error)
        << "undetected single-bit flip at bit " << bit;
  }
}

TEST(SerializationFuzz, EveryCompressorSurvivesRandomShapes) {
  Rng shape_rng(7);
  std::vector<std::string> roster = registered_names();
  for (const auto& name : extension_names()) roster.push_back(name);
  for (const auto& name : roster) {
    auto sender = make_compressor(name);
    auto receiver = make_compressor(name);
    Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<int64_t> dims;
      const int rank = 1 + static_cast<int>(shape_rng.uniform_int(3));
      for (int i = 0; i < rank; ++i) dims.push_back(1 + shape_rng.uniform_int(12));
      Tensor grad(DType::F32, Shape(dims));
      rng.fill_normal(grad.f32(), 0.0f, 1.0f);
      auto ct = sender->compress(grad, "fuzz", rng);
      Tensor restored = receiver->decompress(deserialize(serialize(ct)));
      ASSERT_EQ(restored.shape(), grad.shape()) << name << " trial " << trial;
      for (float v : restored.f32()) {
        ASSERT_TRUE(std::isfinite(v)) << name;
      }
    }
  }
}

}  // namespace
}  // namespace grace::core
