// Convergence properties from §III-E of the paper, checked empirically on
// a strongly convex quadratic f(x) = ||x - t||^2 (single worker):
//  - unbiased compressors (QSGD/TernGrad/Natural/unbiased-RandK/Wangni)
//    converge under a decaying step size, like vanilla SGD;
//  - biased compressors WITH error feedback converge (Karimireddy's
//    result: EF fixes any compressor);
//  - the delta-compressor contraction of Top-k guarantees per-step
//    progress proportional to k/d.
#include <gtest/gtest.h>

#include <cmath>

#include "core/grace_world.h"
#include "core/registry.h"
#include "tensor/ops.h"

namespace grace::core {
namespace {

// Runs compressed gradient descent on f(x) = ||x - t||^2 and returns
// ||x_K - t|| / ||x_0 - t||.
double quadratic_descent(const GraceConfig& cfg, int iters, double lr0,
                         bool decay_lr) {
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  GraceWorker worker(cfg, world.comm(0), net, 7);
  Rng rng(11);
  const int64_t d = 400;
  Tensor target(DType::F32, Shape{{d}});
  rng.fill_normal(target.f32(), 0.0f, 1.0f);
  Tensor x = Tensor::zeros(Shape{{d}});
  const float init_err = ops::l2_norm(target.f32());
  for (int k = 0; k < iters; ++k) {
    Tensor g(DType::F32, Shape{{d}});
    auto gv = g.f32();
    for (int64_t i = 0; i < d; ++i) {
      gv[static_cast<size_t>(i)] =
          2.0f * (x.f32()[static_cast<size_t>(i)] - target.f32()[static_cast<size_t>(i)]);
    }
    Tensor step = worker.exchange(g, "x", nullptr);
    const double lr = decay_lr ? lr0 / (1.0 + 0.05 * k) : lr0;
    ops::axpy(x.f32(), -static_cast<float>(lr), step.f32());
  }
  Tensor diff = x;
  ops::sub(diff.f32(), target.f32());
  return ops::l2_norm(diff.f32()) / init_err;
}

class UnbiasedConverges : public ::testing::TestWithParam<std::string> {};

TEST_P(UnbiasedConverges, QuadraticErrorShrinks) {
  GraceConfig cfg;
  cfg.compressor_spec = GetParam();
  cfg.error_feedback = false;
  // Unbiased dithering adds variance; a decaying step averages it out
  // (the O(1/K) SGD regime the paper cites).
  const double ratio = quadratic_descent(cfg, 400, 0.2, /*decay=*/true);
  EXPECT_LT(ratio, 0.1) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Dithering, UnbiasedConverges,
                         ::testing::Values("qsgd(16)", "terngrad", "natural",
                                           "randomk(0.25,1)", "wangni(0.3)",
                                           "lpcsvrg(5)"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

class EfFixesBias : public ::testing::TestWithParam<std::string> {};

TEST_P(EfFixesBias, BiasedCompressorConvergesWithErrorFeedback) {
  GraceConfig with_ef;
  with_ef.compressor_spec = GetParam();
  with_ef.error_feedback = true;
  // Small constant step: EF delays but does not destroy descent
  // (sparse delivery needs lr * delay * L < 1; ratio 0.25 => delay ~4).
  const double ratio = quadratic_descent(with_ef, 600, 0.05, /*decay=*/false);
  EXPECT_LT(ratio, 0.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Biased, EfFixesBias,
                         ::testing::Values("topk(0.25)", "randomk(0.25)",
                                           "efsignsgd", "powersgd(2)",
                                           "qsparselocal(0.25,8)"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(DeltaCompressor, TopkContractionMatchesTheory) {
  // For x with i.i.d. coordinates, E||x - topk(x)||^2 <= (1 - k/d)||x||^2,
  // with equality only for flat |x|; heavy-tailed x does much better.
  Rng rng(3);
  auto q = make_compressor("topk(0.1)");
  double err2 = 0.0, norm2 = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    Tensor x(DType::F32, Shape{{500}});
    rng.fill_normal(x.f32(), 0.0f, 1.0f);
    Tensor restored = q->decompress(q->compress(x, "t", rng));
    Tensor diff = restored;
    ops::sub(diff.f32(), x.f32());
    err2 += std::pow(static_cast<double>(ops::l2_norm(diff.f32())), 2);
    norm2 += std::pow(static_cast<double>(ops::l2_norm(x.f32())), 2);
  }
  EXPECT_LT(err2 / norm2, 1.0 - 0.1);          // the guaranteed bound
  EXPECT_LT(err2 / norm2, 1.0 - 0.25);         // Gaussian tails beat it
}

TEST(Baseline, VanillaSgdConvergesLinearRate) {
  GraceConfig cfg;
  cfg.compressor_spec = "none";
  // lr 0.2 on L=2 quadratic: contraction factor (1 - 0.4) per step.
  const double ratio = quadratic_descent(cfg, 50, 0.2, /*decay=*/false);
  EXPECT_LT(ratio, 1e-5);
}

}  // namespace
}  // namespace grace::core
