// Distributed trainer integration: replica consistency, equivalence of
// n-worker baseline training with single-worker large-batch training,
// metrics bookkeeping, and end-to-end learning under compression.
#include <gtest/gtest.h>

#include "data/synthetic_images.h"
#include "models/cnn_small.h"
#include "sim/tasks.h"

namespace grace::sim {
namespace {

Benchmark tiny_cnn() { return make_cnn_classification(0.1); }

TrainConfig tiny_config(const Benchmark& b, int workers = 2) {
  TrainConfig cfg = default_config(b);
  cfg.n_workers = workers;
  cfg.net.n_workers = workers;
  cfg.epochs = 2;
  return cfg;
}

TEST(Trainer, ReplicasStayInSync) {
  Benchmark b = tiny_cnn();
  for (const char* spec : {"none", "topk(0.1)", "qsgd(8)", "powersgd(2)"}) {
    TrainConfig cfg = tiny_config(b, 4);
    cfg.grace.compressor_spec = spec;
    RunResult run = train(b.factory, cfg);
    EXPECT_TRUE(run.replicas_in_sync) << spec;
  }
}

TEST(Trainer, BaselineMatchesSingleWorkerBigBatch) {
  // n workers x batch b with Allreduce-mean must equal 1 worker x batch n*b:
  // the same global mini-batch in the same order, the same mean gradient.
  Benchmark b = tiny_cnn();
  TrainConfig multi = tiny_config(b, 4);
  multi.batch_per_worker = 4;
  multi.epochs = 1;
  multi.grace.compressor_spec = "none";
  RunResult rm = train(b.factory, multi);

  TrainConfig single = tiny_config(b, 1);
  single.batch_per_worker = 16;
  single.epochs = 1;
  single.grace.compressor_spec = "none";
  RunResult rs = train(b.factory, single);

  ASSERT_FALSE(rm.epochs.empty());
  ASSERT_FALSE(rs.epochs.empty());
  // Final quality must agree to float tolerance (identical update sequence
  // up to summation order inside the gradient mean).
  EXPECT_NEAR(rm.final_quality, rs.final_quality, 1e-6);
}

TEST(Trainer, DeterministicAcrossRuns) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "randomk(0.2)";
  RunResult r1 = train(b.factory, cfg);
  RunResult r2 = train(b.factory, cfg);
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(r1.epochs[e].train_loss, r2.epochs[e].train_loss);
    EXPECT_DOUBLE_EQ(r1.epochs[e].quality, r2.epochs[e].quality);
  }
  EXPECT_DOUBLE_EQ(r1.wire_bytes_per_iter, r2.wire_bytes_per_iter);
}

TEST(Trainer, SeedChangesTrajectory) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  RunResult r1 = train(b.factory, cfg);
  cfg.seed = 777;
  RunResult r2 = train(b.factory, cfg);
  EXPECT_NE(r1.epochs[0].train_loss, r2.epochs[0].train_loss);
}

TEST(Trainer, MetricsBookkeeping) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.1)";
  RunResult run = train(b.factory, cfg);
  EXPECT_EQ(run.model, "cnn-small");
  EXPECT_EQ(run.compressor, "topk(0.1)");
  EXPECT_TRUE(run.error_feedback);
  EXPECT_GT(run.model_parameters, 0);
  EXPECT_EQ(static_cast<int>(run.epochs.size()), cfg.epochs);
  EXPECT_GT(run.throughput, 0.0);
  EXPECT_GT(run.wire_bytes_per_iter, 0.0);
  EXPECT_GT(run.compute_s, 0.0);
  EXPECT_GT(run.comm_s, 0.0);
  EXPECT_GT(run.total_sim_seconds, 0.0);
  // Cumulative time is monotone and ends at the total.
  double prev = 0.0;
  for (const auto& e : run.epochs) {
    EXPECT_GT(e.cum_sim_seconds, prev);
    prev = e.cum_sim_seconds;
  }
  EXPECT_DOUBLE_EQ(prev, run.total_sim_seconds);
}

TEST(Trainer, CompressionReducesWireBytes) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "none";
  const double base = train(b.factory, cfg).wire_bytes_per_iter;
  cfg.grace.compressor_spec = "topk(0.01)";
  const double topk = train(b.factory, cfg).wire_bytes_per_iter;
  cfg.grace.compressor_spec = "signsgd";
  const double sign = train(b.factory, cfg).wire_bytes_per_iter;
  EXPECT_LT(topk, base * 0.05);
  EXPECT_LT(sign, base * 0.05);
}

TEST(Trainer, BaselineUsesLessCommTimeOnFasterNetwork) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.net.bandwidth_gbps = 1.0;
  const double slow = train(b.factory, cfg).comm_s;
  cfg.net.bandwidth_gbps = 25.0;
  const double fast = train(b.factory, cfg).comm_s;
  EXPECT_GT(slow, fast);
}

TEST(Trainer, EndToEndLearningUnderCompression) {
  // Every compressor family must reach clearly-above-chance accuracy on an
  // easy task (10 classes => chance = 0.1).
  data::ImageConfig dc;
  dc.n_train = 200;
  dc.n_test = 100;
  dc.noise = 0.4f;
  auto data = std::make_shared<const data::ImageDataset>(data::make_images(dc));
  ReplicaFactory factory = [data](uint64_t seed) {
    return std::make_unique<models::CnnSmall>(data, seed);
  };
  for (const char* spec :
       {"none", "topk(0.05)", "qsgd(64)", "efsignsgd", "powersgd(4)",
        "dgc(0.05)", "terngrad", "sketchml(64)"}) {
    TrainConfig cfg;
    cfg.n_workers = 2;
    cfg.net.n_workers = 2;
    cfg.batch_per_worker = 8;
    cfg.epochs = 4;
    cfg.optimizer = {.type = optim::OptimizerType::Momentum, .lr = 0.05};
    // DGC's built-in momentum correction composes badly with a momentum
    // optimizer; the paper runs it with vanilla SGD (§V-A).
    if (std::string(spec).starts_with("dgc")) {
      cfg.optimizer.type = optim::OptimizerType::Sgd;
    }
    cfg.grace.compressor_spec = spec;
    RunResult run = train(factory, cfg);
    EXPECT_GT(run.best_quality, 0.35) << spec;
    EXPECT_TRUE(run.replicas_in_sync) << spec;
  }
}

TEST(Trainer, EpochTailAccountedWhenDatasetDoesNotDivide) {
  // Regression: iterations only cover whole global batches, so with
  // n_train=200 and a global batch of 16 each epoch runs 12 iterations
  // (192 samples) and silently skips 8. The trainer must now surface that
  // in the result instead of dropping the tail without a trace.
  data::ImageConfig dc;
  dc.n_train = 200;
  dc.n_test = 20;
  auto data = std::make_shared<const data::ImageDataset>(data::make_images(dc));
  ReplicaFactory factory = [data](uint64_t seed) {
    return std::make_unique<models::CnnSmall>(data, seed);
  };
  TrainConfig cfg;
  cfg.n_workers = 2;
  cfg.net.n_workers = 2;
  cfg.batch_per_worker = 8;
  cfg.epochs = 1;
  RunResult run = train(factory, cfg);
  EXPECT_EQ(run.samples_per_epoch, 192);
  EXPECT_EQ(run.samples_dropped_per_epoch, 8);

  // An evenly dividing dataset drops nothing.
  cfg.batch_per_worker = 10;  // global batch 20 divides 200
  RunResult even = train(factory, cfg);
  EXPECT_EQ(even.samples_per_epoch, 200);
  EXPECT_EQ(even.samples_dropped_per_epoch, 0);
}

TEST(Trainer, DatasetSmallerThanGlobalBatchWrapsAround) {
  // Regression: with n_train < global batch the batch slice used to read
  // past the epoch order. The trainer must wrap instead, still running one
  // full-iteration epoch with every replica in sync.
  data::ImageConfig dc;
  dc.n_train = 10;  // < 2 workers x batch 8 = 16
  dc.n_test = 20;
  auto data = std::make_shared<const data::ImageDataset>(data::make_images(dc));
  ReplicaFactory factory = [data](uint64_t seed) {
    return std::make_unique<models::CnnSmall>(data, seed);
  };
  TrainConfig cfg;
  cfg.n_workers = 2;
  cfg.net.n_workers = 2;
  cfg.batch_per_worker = 8;
  cfg.epochs = 2;
  RunResult run = train(factory, cfg);
  ASSERT_EQ(run.epochs.size(), 2u);
  EXPECT_TRUE(run.replicas_in_sync);
  EXPECT_EQ(run.samples_per_epoch, 16);  // one wrapped global batch
  EXPECT_EQ(run.samples_dropped_per_epoch, 0);
}

TEST(Tasks, StandardSuiteShape) {
  auto suite = standard_suite(0.1);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].model, "cnn-small");
  EXPECT_EQ(suite[1].model, "mlp-wide");
  EXPECT_EQ(suite[2].model, "lstm-lm");
  EXPECT_EQ(suite[3].model, "ncf");
  EXPECT_EQ(suite[4].model, "unet-mini");
  for (const auto& b : suite) {
    EXPECT_TRUE(b.factory);
    EXPECT_GT(b.epochs, 0);
    EXPECT_FALSE(b.quality_metric.empty());
  }
}

TEST(Tasks, DefaultConfigMirrorsPaperSetup) {
  auto b = make_cnn_classification(0.1);
  TrainConfig cfg = default_config(b);
  EXPECT_EQ(cfg.n_workers, 8);
  EXPECT_EQ(cfg.net.n_workers, 8);
  EXPECT_DOUBLE_EQ(cfg.net.bandwidth_gbps, 10.0);
  EXPECT_EQ(cfg.net.transport, comm::Transport::Tcp);
}

}  // namespace
}  // namespace grace::sim
