// Synthetic dataset generators: shapes, determinism, learnable structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/synthetic_images.h"
#include "data/synthetic_recsys.h"
#include "data/synthetic_segmentation.h"
#include "data/synthetic_text.h"
#include "tensor/ops.h"

namespace grace::data {
namespace {

TEST(Images, ShapesAndBalance) {
  ImageConfig cfg;
  cfg.n_train = 100;
  cfg.n_test = 40;
  cfg.classes = 10;
  ImageDataset ds = make_images(cfg);
  EXPECT_EQ(ds.train_x.shape(), Shape({100, 3, 16, 16}));
  EXPECT_EQ(ds.train_size(), 100);
  EXPECT_EQ(ds.test_size(), 40);
  std::vector<int> counts(10, 0);
  for (int32_t y : ds.train_y) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 10);
    ++counts[static_cast<size_t>(y)];
  }
  for (int c : counts) EXPECT_EQ(c, 10);  // balanced
}

TEST(Images, DeterministicPerSeed) {
  ImageConfig cfg;
  cfg.n_train = 16;
  cfg.n_test = 8;
  ImageDataset a = make_images(cfg), b = make_images(cfg);
  for (int64_t i = 0; i < a.train_x.numel(); ++i) {
    ASSERT_EQ(a.train_x.f32()[static_cast<size_t>(i)], b.train_x.f32()[static_cast<size_t>(i)]);
  }
  cfg.seed = 999;
  ImageDataset c = make_images(cfg);
  EXPECT_NE(a.train_x.f32()[0], c.train_x.f32()[0]);
}

TEST(Images, ClassesAreSeparated) {
  // Same-class samples must be closer (on average) than cross-class ones.
  ImageConfig cfg;
  cfg.n_train = 60;
  cfg.n_test = 10;
  cfg.noise = 0.5f;
  ImageDataset ds = make_images(cfg);
  const int64_t elems = 3 * 16 * 16;
  auto dist = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (int64_t k = 0; k < elems; ++k) {
      const double d = ds.train_x.f32()[static_cast<size_t>(i * elems + k)] -
                       ds.train_x.f32()[static_cast<size_t>(j * elems + k)];
      acc += d * d;
    }
    return acc;
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int64_t i = 0; i < 30; ++i) {
    for (int64_t j = i + 1; j < 30; ++j) {
      if (ds.train_y[static_cast<size_t>(i)] == ds.train_y[static_cast<size_t>(j)]) {
        same += dist(i, j);
        ++same_n;
      } else {
        cross += dist(i, j);
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(Text, TokensInVocab) {
  TextConfig cfg;
  cfg.train_tokens = 500;
  cfg.test_tokens = 100;
  cfg.vocab = 16;
  TextDataset ds = make_text(cfg);
  EXPECT_EQ(ds.train_tokens.size(), 500u);
  EXPECT_EQ(ds.test_tokens.size(), 100u);
  for (int32_t t : ds.train_tokens) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 16);
  }
}

TEST(Text, MarkovStructureIsLearnable) {
  // With branch=2 and low noise, the bigram distribution must be far from
  // uniform: each state's top-2 successors carry most of the mass.
  TextConfig cfg;
  cfg.train_tokens = 20000;
  cfg.vocab = 8;
  cfg.branch = 2;
  cfg.noise = 0.05;
  TextDataset ds = make_text(cfg);
  std::vector<std::vector<int>> bigrams(8, std::vector<int>(8, 0));
  for (size_t i = 0; i + 1 < ds.train_tokens.size(); ++i) {
    ++bigrams[static_cast<size_t>(ds.train_tokens[i])][static_cast<size_t>(ds.train_tokens[i + 1])];
  }
  for (int s = 0; s < 8; ++s) {
    std::vector<int> row = bigrams[static_cast<size_t>(s)];
    std::sort(row.begin(), row.end(), std::greater<>());
    const int total = std::accumulate(row.begin(), row.end(), 0);
    if (total < 100) continue;
    EXPECT_GT(static_cast<double>(row[0] + row[1]) / total, 0.7) << "state " << s;
  }
}

TEST(Recsys, LeaveOneOutStructure) {
  RecsysConfig cfg;
  cfg.n_users = 50;
  cfg.n_items = 80;
  cfg.positives_per_user = 6;
  RecsysDataset ds = make_recsys(cfg);
  EXPECT_EQ(ds.n_users, 50);
  EXPECT_EQ(ds.train_pos.size(), 50u * 5);  // one positive held out
  EXPECT_EQ(ds.test_item_for_user.size(), 50u);
  for (const auto& [u, i] : ds.train_pos) {
    ASSERT_GE(u, 0);
    ASSERT_LT(u, 50);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 80);
    // The held-out item never appears in training for that user.
    ASSERT_NE(i, ds.test_item_for_user[static_cast<size_t>(u)]);
  }
}

TEST(Recsys, UserPositivesAreDistinct) {
  RecsysDataset ds = make_recsys({.n_users = 20, .n_items = 50,
                                  .positives_per_user = 8});
  std::vector<std::set<int32_t>> per_user(20);
  for (const auto& [u, i] : ds.train_pos) {
    EXPECT_TRUE(per_user[static_cast<size_t>(u)].insert(i).second)
        << "duplicate item " << i << " for user " << u;
  }
}

TEST(Segmentation, MasksMatchBrightRegions) {
  SegmentationConfig cfg;
  cfg.n_train = 20;
  cfg.n_test = 5;
  SegmentationDataset ds = make_segmentation(cfg);
  EXPECT_EQ(ds.train_x.shape(), Shape({20, 1, 16, 16}));
  EXPECT_EQ(ds.train_y.shape(), Shape({20, 1, 16, 16}));
  auto y = ds.train_y.f32();
  auto x = ds.train_x.f32();
  double in_mask = 0.0, out_mask = 0.0;
  int64_t in_n = 0, out_n = 0;
  for (int64_t i = 0; i < ds.train_x.numel(); ++i) {
    ASSERT_TRUE(y[static_cast<size_t>(i)] == 0.0f || y[static_cast<size_t>(i)] == 1.0f);
    if (y[static_cast<size_t>(i)] > 0.5f) {
      in_mask += x[static_cast<size_t>(i)];
      ++in_n;
    } else {
      out_mask += x[static_cast<size_t>(i)];
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 0);
  EXPECT_GT(in_mask / in_n, out_mask / out_n + 1.0);  // defects are bright
}

TEST(GatherRows, SelectsAndOrders) {
  Tensor x = Tensor::from(std::vector<float>{0, 1, 2, 3, 4, 5}, Shape{{3, 2}});
  const std::vector<int64_t> idx{2, 0};
  Tensor out = gather_rows(x, idx);
  EXPECT_EQ(out.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(out.f32()[0], 4.0f);
  EXPECT_FLOAT_EQ(out.f32()[3], 1.0f);
}

}  // namespace
}  // namespace grace::data
