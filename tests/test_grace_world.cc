// GraceWorker: the Algorithm-1 pipeline across real worker threads —
// aggregation semantics, error-feedback plumbing, stats accounting.
#include <gtest/gtest.h>

#include <thread>

#include "core/grace_world.h"
#include "core/registry.h"
#include "tensor/ops.h"

namespace grace::core {
namespace {

// Runs fn(rank, worker) on n threads with one GraceWorker per rank.
std::vector<Tensor> exchange_on_ranks(const GraceConfig& cfg, int n,
                                      const std::vector<Tensor>& grads,
                                      ExchangeStats* stats0 = nullptr) {
  comm::World world(n);
  comm::NetworkModel net;
  net.n_workers = n;
  std::vector<Tensor> results(static_cast<size_t>(n));
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      GraceWorker worker(cfg, world.comm(rank), net, static_cast<uint64_t>(rank) + 1);
      ExchangeStats stats;
      results[static_cast<size_t>(rank)] =
          worker.exchange(grads[static_cast<size_t>(rank)], "g", &stats);
      if (rank == 0 && stats0) *stats0 = stats;
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

TEST(GraceWorker, BaselineAllreduceComputesExactMean) {
  GraceConfig cfg;
  cfg.compressor_spec = "none";
  const int n = 4;
  std::vector<Tensor> grads;
  for (int r = 0; r < n; ++r) {
    grads.push_back(Tensor::full(Shape{{6}}, static_cast<float>(r + 1)));
  }
  auto results = exchange_on_ranks(cfg, n, grads);
  for (const auto& res : results) {
    for (float v : res.f32()) EXPECT_FLOAT_EQ(v, 2.5f);  // mean of 1..4
  }
}

TEST(GraceWorker, AllgatherPathAgreesAcrossRanks) {
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.5)";
  const int n = 3;
  Rng rng(3);
  std::vector<Tensor> grads;
  for (int r = 0; r < n; ++r) {
    Tensor g(DType::F32, Shape{{32}});
    rng.fill_normal(g.f32(), 0.0f, 1.0f);
    grads.push_back(std::move(g));
  }
  auto results = exchange_on_ranks(cfg, n, grads);
  for (int r = 1; r < n; ++r) {
    for (int64_t i = 0; i < 32; ++i) {
      ASSERT_EQ(results[0].f32()[static_cast<size_t>(i)],
                results[static_cast<size_t>(r)].f32()[static_cast<size_t>(i)])
          << "rank " << r;
    }
  }
}

TEST(GraceWorker, TopkAggregateIsMeanOfSparseReconstructions) {
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.25)";
  cfg.error_feedback = false;
  const int n = 2;
  // Rank 0: spike at index 0; rank 1: spike at index 3.
  Tensor g0 = Tensor::zeros(Shape{{4}});
  g0.f32()[0] = 8.0f;
  Tensor g1 = Tensor::zeros(Shape{{4}});
  g1.f32()[3] = -4.0f;
  auto results = exchange_on_ranks(cfg, n, {g0, g1});
  EXPECT_FLOAT_EQ(results[0].f32()[0], 4.0f);   // 8/2
  EXPECT_FLOAT_EQ(results[0].f32()[3], -2.0f);  // -4/2
  EXPECT_FLOAT_EQ(results[0].f32()[1], 0.0f);
}

TEST(GraceWorker, StatsAccounting) {
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.25)";
  const int n = 2;
  Rng rng(4);
  std::vector<Tensor> grads;
  for (int r = 0; r < n; ++r) {
    Tensor g(DType::F32, Shape{{100}});
    rng.fill_normal(g.f32(), 0.0f, 1.0f);
    grads.push_back(std::move(g));
  }
  ExchangeStats stats;
  exchange_on_ranks(cfg, n, grads, &stats);
  EXPECT_EQ(stats.wire_bytes, 25u * 8);  // 25 values + 25 indices
  EXPECT_GT(stats.comm_seconds, 0.0);
  EXPECT_GE(stats.compress_seconds, 0.0);
}

TEST(GraceWorker, WireCodecShrinksWireWithoutChangingAggregate) {
  const int n = 2;
  const int64_t d = 4096;
  Rng rng(9);
  std::vector<Tensor> grads;
  for (int r = 0; r < n; ++r) {
    Tensor g(DType::F32, Shape{{d}});
    rng.fill_normal(g.f32(), 0.0f, 1.0f);
    grads.push_back(std::move(g));
  }

  GraceConfig raw_cfg;
  raw_cfg.compressor_spec = "topk(0.05)";
  ExchangeStats raw_stats;
  auto raw_results = exchange_on_ranks(raw_cfg, n, grads, &raw_stats);

  GraceConfig rice_cfg = raw_cfg;
  rice_cfg.wire_codec = WireCodec::Rice;
  ExchangeStats rice_stats;
  auto rice_results = exchange_on_ranks(rice_cfg, n, grads, &rice_stats);

  // Lossless stage: the aggregated tensors are bit-identical...
  for (int r = 0; r < n; ++r) {
    for (int64_t i = 0; i < d; ++i) {
      ASSERT_EQ(raw_results[static_cast<size_t>(r)].f32()[static_cast<size_t>(i)],
                rice_results[static_cast<size_t>(r)].f32()[static_cast<size_t>(i)])
          << "rank " << r << " i=" << i;
    }
  }
  // ...but the wire (and thus the modeled link time) got smaller.
  EXPECT_LT(rice_stats.wire_bytes, raw_stats.wire_bytes);
  EXPECT_LT(rice_stats.comm_seconds, raw_stats.comm_seconds);
}

TEST(GraceWorker, WireCodecLeavesQuantizersUntouched) {
  // Quantizers tag no index parts; the stage must be a no-op for them.
  const int n = 2;
  Rng rng(12);
  std::vector<Tensor> grads;
  for (int r = 0; r < n; ++r) {
    Tensor g(DType::F32, Shape{{64}});
    rng.fill_normal(g.f32(), 0.0f, 1.0f);
    grads.push_back(std::move(g));
  }
  GraceConfig raw_cfg;
  raw_cfg.compressor_spec = "signsgd";
  ExchangeStats raw_stats;
  exchange_on_ranks(raw_cfg, n, grads, &raw_stats);
  GraceConfig rice_cfg = raw_cfg;
  rice_cfg.wire_codec = WireCodec::Rice;
  ExchangeStats rice_stats;
  exchange_on_ranks(rice_cfg, n, grads, &rice_stats);
  EXPECT_EQ(rice_stats.wire_bytes, raw_stats.wire_bytes);
}

TEST(GraceWorker, ErrorFeedbackDefaultFollowsTableOne) {
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  auto build = [&](const std::string& spec) {
    GraceConfig cfg;
    cfg.compressor_spec = spec;
    return GraceWorker(cfg, world.comm(0), net, 1).error_feedback_enabled();
  };
  EXPECT_FALSE(build("none"));
  EXPECT_FALSE(build("signsgd"));
  EXPECT_FALSE(build("qsgd(64)"));
  EXPECT_FALSE(build("terngrad"));
  EXPECT_TRUE(build("topk(0.01)"));
  EXPECT_TRUE(build("randomk(0.01)"));
  EXPECT_TRUE(build("efsignsgd"));
  EXPECT_TRUE(build("powersgd(4)"));
}

TEST(GraceWorker, ErrorFeedbackOverride) {
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.01)";
  cfg.error_feedback = false;
  EXPECT_FALSE(GraceWorker(cfg, world.comm(0), net, 1).error_feedback_enabled());
  cfg.compressor_spec = "signsgd";
  cfg.error_feedback = true;
  EXPECT_TRUE(GraceWorker(cfg, world.comm(0), net, 1).error_feedback_enabled());
}

TEST(GraceWorker, ErrorFeedbackRecoversDroppedMassOverTime) {
  // Single worker, heavy sparsification with EF: the cumulative transmitted
  // gradient must approach the cumulative true gradient.
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.1)";
  cfg.error_feedback = true;
  GraceWorker worker(cfg, world.comm(0), net, 1);

  Rng rng(5);
  Tensor g(DType::F32, Shape{{50}});
  rng.fill_normal(g.f32(), 1.0f, 0.2f);  // all-positive mass
  Tensor shipped = Tensor::zeros(Shape{{50}});
  const int rounds = 60;
  for (int k = 0; k < rounds; ++k) {
    Tensor agg = worker.exchange(g, "g", nullptr);
    ops::add(shipped.f32(), agg.f32());
  }
  // Without EF only 10% of coordinates would ever ship; with EF every
  // coordinate's cumulative mass approaches rounds * g[i].
  for (int64_t i = 0; i < 50; ++i) {
    const float expect = static_cast<float>(rounds) * g.f32()[static_cast<size_t>(i)];
    EXPECT_NEAR(shipped.f32()[static_cast<size_t>(i)], expect, 0.35f * expect);
  }
}

TEST(GraceWorker, WithoutErrorFeedbackMassIsLost) {
  comm::World world(1);
  comm::NetworkModel net;
  net.n_workers = 1;
  GraceConfig cfg;
  cfg.compressor_spec = "topk(0.1)";
  cfg.error_feedback = false;
  GraceWorker worker(cfg, world.comm(0), net, 1);
  Tensor g(DType::F32, Shape{{50}});
  Rng rng(6);
  rng.fill_normal(g.f32(), 1.0f, 0.2f);
  Tensor shipped = Tensor::zeros(Shape{{50}});
  for (int k = 0; k < 20; ++k) {
    ops::add(shipped.f32(), worker.exchange(g, "g", nullptr).f32());
  }
  EXPECT_EQ(ops::count_nonzero(shipped.f32()), 5);  // same top-5 every round
}

TEST(ExchangeStats, Accumulate) {
  ExchangeStats a{10, 1.0, 2.0, 3.0};
  ExchangeStats b{5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_EQ(a.wire_bytes, 15u);
  EXPECT_DOUBLE_EQ(a.compress_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.decompress_seconds, 2.5);
  EXPECT_DOUBLE_EQ(a.comm_seconds, 3.5);
}

}  // namespace
}  // namespace grace::core
