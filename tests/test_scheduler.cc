// Bucketed exchange scheduling (sim/scheduler.h): the bucket planner, the
// GraceWorker submit/wait split, the simulated overlap timeline, and the
// trainer-level invariants tying them together. Everything here is sized
// for the `ctest -L quick` tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.h"
#include "core/grace_world.h"
#include "nn/module.h"
#include "sim/scheduler.h"
#include "sim/tasks.h"
#include "sim/trace.h"
#include "tensor/ops.h"

namespace grace::sim {
namespace {

std::vector<std::string> names_for(size_t n) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

// ---------------------------------------------------------------------------
// plan_buckets

TEST(BucketPlan, ZeroCapIsOneBucketPerTensor) {
  const std::vector<int64_t> numels = {7, 1, 100, 3};
  const auto names = names_for(numels.size());
  const auto plan = plan_buckets(numels, names, 0);
  ASSERT_EQ(plan.size(), numels.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].id, static_cast<int32_t>(i));
    EXPECT_EQ(plan[i].first, i);
    EXPECT_EQ(plan[i].count, 1u);
    EXPECT_EQ(plan[i].numel, numels[i]);
    EXPECT_EQ(plan[i].name, names[i]);  // per-tensor: own state key
  }
}

TEST(BucketPlan, MaxCapIsOneFusedBucket) {
  const std::vector<int64_t> numels = {7, 1, 100, 3};
  const auto names = names_for(numels.size());
  const auto plan = plan_buckets(numels, names, SIZE_MAX);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].first, 0u);
  EXPECT_EQ(plan[0].count, numels.size());
  EXPECT_EQ(plan[0].numel, 111);
  EXPECT_EQ(plan[0].name, "fused");  // the legacy fusion state key
}

TEST(BucketPlan, CapClosesBucketsAndOversizedTensorStandsAlone) {
  // 10 elements = 40 bytes each; an 80-byte cap packs pairs. The 50-element
  // tensor exceeds the cap on its own and must still form a (single-tensor)
  // bucket rather than being split or dropped.
  const std::vector<int64_t> numels = {10, 10, 10, 50, 10};
  const auto names = names_for(numels.size());
  const auto plan = plan_buckets(numels, names, 80);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].count, 2u);
  EXPECT_EQ(plan[0].numel, 20);
  EXPECT_EQ(plan[0].name, "bucket0");
  EXPECT_EQ(plan[1].count, 1u);
  EXPECT_EQ(plan[1].name, names[2]);  // single-tensor bucket keeps its name
  EXPECT_EQ(plan[2].count, 1u);
  EXPECT_EQ(plan[2].numel, 50);
  EXPECT_EQ(plan[2].name, names[3]);
  EXPECT_EQ(plan[3].count, 1u);
  EXPECT_EQ(plan[3].name, names[4]);
  // Buckets tile the tensor list in order.
  size_t at = 0;
  for (const auto& b : plan) {
    EXPECT_EQ(b.first, at);
    at += b.count;
  }
  EXPECT_EQ(at, numels.size());
}

TEST(BucketPlan, RejectsMismatchedNamesAndNumels) {
  // Regression: a numels/names length skew used to trip an assert (or walk
  // off the names vector in release builds); it must throw instead so a
  // misconfigured caller fails on the main thread, not inside a worker.
  const std::vector<int64_t> numels = {7, 1, 100};
  EXPECT_THROW(plan_buckets(numels, names_for(2), 0), std::invalid_argument);
  EXPECT_THROW(plan_buckets(numels, names_for(4), 0), std::invalid_argument);
  EXPECT_NO_THROW(plan_buckets(numels, names_for(3), 0));
}

TEST(BucketPlan, PureFunctionOfInputsSoRanksAgree) {
  // Every rank plans independently from (numels, names, cap); the plans
  // must be field-for-field identical or the collectives would deadlock.
  const std::vector<int64_t> numels = {33, 2, 900, 41, 7, 7};
  const auto names = names_for(numels.size());
  for (size_t cap : {size_t{0}, size_t{256}, size_t{4096}, SIZE_MAX}) {
    const auto a = plan_buckets(numels, names, cap);
    const auto b = plan_buckets(numels, names, cap);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].name, b[i].name);
      EXPECT_EQ(a[i].first, b[i].first);
      EXPECT_EQ(a[i].count, b[i].count);
      EXPECT_EQ(a[i].numel, b[i].numel);
    }
  }
}

// ---------------------------------------------------------------------------
// GraceWorker submit/wait

// Runs `iters` rounds of two-rank gradient exchange over `numels`-shaped
// tensors, either through the legacy one-shot exchange() or through the
// submit-all-then-wait-all schedule, and returns rank 0's aggregated
// outputs concatenated. Gradients are a deterministic function of (rank,
// iteration, tensor), so both drivers see identical inputs.
std::vector<float> run_exchanges(const std::string& spec,
                                 const std::vector<int64_t>& numels, int iters,
                                 bool split) {
  comm::World world(2);
  std::vector<float> out;
  auto worker = [&](int rank) {
    core::GraceConfig gcfg;
    gcfg.compressor_spec = spec;
    comm::NetworkModel net;
    net.n_workers = 2;
    core::GraceWorker w(gcfg, world.comm(rank), net,
                        1234 + static_cast<uint64_t>(rank));
    for (int it = 0; it < iters; ++it) {
      std::vector<Tensor> grads;
      for (size_t t = 0; t < numels.size(); ++t) {
        Tensor g = Tensor::zeros(Shape{{numels[t]}});
        auto s = g.f32();
        for (size_t i = 0; i < s.size(); ++i) {
          s[i] = 0.01f * static_cast<float>((rank + 1) * (it + 1)) *
                 static_cast<float>((i + 7 * t) % 13) -
                 0.05f * static_cast<float>(t);
        }
        grads.push_back(std::move(g));
      }
      std::vector<Tensor> aggs;
      if (split) {
        std::vector<core::ExchangeHandle> hs;
        for (size_t t = 0; t < grads.size(); ++t) {
          hs.push_back(w.submit(grads[t], "t" + std::to_string(t)));
        }
        for (auto& h : hs) aggs.push_back(w.wait(std::move(h)));
      } else {
        for (size_t t = 0; t < grads.size(); ++t) {
          aggs.push_back(w.exchange(grads[t], "t" + std::to_string(t)));
        }
      }
      if (rank == 0) {
        for (const Tensor& a : aggs) {
          auto s = a.f32();
          out.insert(out.end(), s.begin(), s.end());
        }
      }
    }
  };
  std::thread t1(worker, 1);
  worker(0);
  t1.join();
  return out;
}

TEST(SubmitWait, SubmitAllThenWaitAllMatchesInterleavedExchange) {
  // All compressor/EF state mutation and RNG consumption happen at
  // submit(); wait() is const with respect to compressor state. A
  // submit-all-then-wait-all schedule must therefore be bit-identical to
  // the legacy interleaved exchange() — including for stateful (EF) and
  // randomized (QSGD) compressors.
  const std::vector<int64_t> numels = {48, 7, 130};
  for (const char* spec : {"none", "topk(0.25)", "qsgd(8)", "efsignsgd"}) {
    const auto interleaved = run_exchanges(spec, numels, 3, /*split=*/false);
    const auto pipelined = run_exchanges(spec, numels, 3, /*split=*/true);
    EXPECT_EQ(interleaved, pipelined) << spec;
  }
}

// ---------------------------------------------------------------------------
// schedule_buckets timeline

TEST(Timeline, AdditiveModeChainsEveryStageAfterCompute) {
  const std::vector<BucketTiming> buckets = {
      {0.2, 0.01, 0.05, 0.02},
      {0.6, 0.03, 0.04, 0.01},
      {1.0, 0.02, 0.06, 0.03},
  };
  const double compute_end = 1.0;
  const auto s = schedule_buckets(buckets, compute_end, /*overlap=*/false);
  double expect = compute_end;
  for (const auto& t : buckets) expect += t.compress_s + t.comm_s + t.decompress_s;
  EXPECT_DOUBLE_EQ(s.exchange_end, expect);
  EXPECT_DOUBLE_EQ(s.additive_end, expect);
  // Bucket 0 starts exactly at compute end; each bucket chains after the
  // previous one's decompress.
  EXPECT_DOUBLE_EQ(s.spans[0].compress_start, compute_end);
  for (size_t b = 1; b < buckets.size(); ++b) {
    EXPECT_DOUBLE_EQ(s.spans[b].compress_start, s.spans[b - 1].end);
  }
}

TEST(Timeline, OverlapClosedFormCriticalPath) {
  // Two buckets, compute ends at 1.0. Bucket 0 is ready at 0.5, compresses
  // for 0.1, occupies the link 0.6..0.9, decompresses 0.9..0.95. Bucket 1
  // is ready at 1.0, compresses 1.0..1.1, wants the link at 1.1 (free since
  // 0.9), comm 1.1..1.3, decompress 1.3..1.35.
  const std::vector<BucketTiming> buckets = {
      {0.5, 0.1, 0.3, 0.05},
      {1.0, 0.1, 0.2, 0.05},
  };
  const auto s = schedule_buckets(buckets, 1.0, /*overlap=*/true);
  EXPECT_DOUBLE_EQ(s.spans[0].compress_start, 0.5);
  EXPECT_DOUBLE_EQ(s.spans[0].comm_start, 0.6);
  EXPECT_DOUBLE_EQ(s.spans[0].decompress_start, 0.9);
  EXPECT_DOUBLE_EQ(s.spans[0].end, 0.95);
  EXPECT_DOUBLE_EQ(s.spans[1].compress_start, 1.0);
  EXPECT_DOUBLE_EQ(s.spans[1].comm_start, 1.1);
  EXPECT_DOUBLE_EQ(s.spans[1].decompress_start, 1.3);
  EXPECT_DOUBLE_EQ(s.spans[1].end, 1.35);
  EXPECT_DOUBLE_EQ(s.exchange_end, 1.35);
  // Additive would have charged 1.0 + (0.1+0.3+0.05) + (0.1+0.2+0.05).
  EXPECT_DOUBLE_EQ(s.additive_end, 1.8);
  EXPECT_DOUBLE_EQ(s.link_busy_s, 0.5);
}

TEST(Timeline, ConcurrentBucketsSerializeOnTheLink) {
  // Three instantly-ready, instantly-coded buckets all want the link at
  // once: network occupancy forces them into a back-to-back queue, so the
  // pipeline can never beat the pure-network lower bound.
  const std::vector<BucketTiming> buckets = {
      {0.0, 0.0, 0.4, 0.0},
      {0.0, 0.0, 0.3, 0.0},
      {0.0, 0.0, 0.2, 0.0},
  };
  const auto s = schedule_buckets(buckets, 1.0, /*overlap=*/true);
  EXPECT_DOUBLE_EQ(s.spans[0].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(s.spans[1].comm_start, 0.4);  // queued behind bucket 0
  EXPECT_DOUBLE_EQ(s.spans[2].comm_start, 0.7);
  EXPECT_DOUBLE_EQ(s.exchange_end, std::max(1.0, 0.9));
  EXPECT_GE(s.exchange_end - 0.0, s.link_busy_s);  // link occupancy floor
}

TEST(Timeline, OverlapNeverExceedsAdditiveAndRespectsFloors) {
  const std::vector<BucketTiming> buckets = {
      {0.1, 0.02, 0.10, 0.01}, {0.3, 0.01, 0.02, 0.02},
      {0.5, 0.04, 0.15, 0.01}, {0.9, 0.01, 0.01, 0.01},
      {1.0, 0.03, 0.08, 0.02},
  };
  const double compute_end = 1.0;
  const auto s = schedule_buckets(buckets, compute_end, /*overlap=*/true);
  EXPECT_LE(s.exchange_end, s.additive_end);
  // The pipeline cannot finish before the link drains, before compute ends
  // (the last bucket only becomes ready then), or before any single
  // bucket's own chain.
  EXPECT_GE(s.exchange_end, s.link_busy_s);
  EXPECT_GE(s.exchange_end, compute_end);
  for (size_t b = 0; b < buckets.size(); ++b) {
    const BucketTiming& t = buckets[b];
    EXPECT_GE(s.exchange_end,
              t.ready_s + t.compress_s + t.comm_s + t.decompress_s);
    if (b > 0) {  // link serialization invariant
      EXPECT_GE(s.spans[b].comm_start,
                s.spans[b - 1].comm_start + buckets[b - 1].comm_s);
    }
  }
}

TEST(Timeline, SingleBucketReadyAtComputeEndGainsNothing) {
  // All-in-one fusion: the lone bucket's gradients are only complete when
  // backward finishes, so overlap degenerates to the additive layout.
  const std::vector<BucketTiming> buckets = {{1.0, 0.1, 0.3, 0.05}};
  const auto s = schedule_buckets(buckets, 1.0, /*overlap=*/true);
  EXPECT_DOUBLE_EQ(s.exchange_end, s.additive_end);
}

// ---------------------------------------------------------------------------
// Bucket-global compressor semantics

TEST(BucketSemantics, ShapeAwareCompressorSelectsAcrossTheBucket) {
  // Two tensors in one bucket, one with large-magnitude gradients and one
  // with tiny ones. Bucket-global Top-k(0.5) spends its entire budget on
  // the loud tensor — the quiet tensor's aggregated gradient comes back
  // all-zero, which per-tensor Top-k (fusion_bytes = 0, selection within
  // each tensor) never does.
  for (const size_t fusion_bytes : {SIZE_MAX, size_t{0}}) {
    nn::Module m;
    m.register_parameter("loud", Tensor::zeros(Shape{{8}}));
    m.register_parameter("quiet", Tensor::zeros(Shape{{8}}));
    auto& params = m.parameters();
    for (int i = 0; i < 8; ++i) {
      params[0].value->grad.f32()[i] = 100.0f + static_cast<float>(i);
      params[1].value->grad.f32()[i] = 0.001f * static_cast<float>(i + 1);
    }
    comm::World world(1);
    core::GraceConfig gcfg;
    gcfg.compressor_spec = "topk(0.5)";
    comm::NetworkModel net;
    net.n_workers = 1;
    core::GraceWorker w(gcfg, world.comm(0), net, 99);
    ExchangeScheduler sched(params, fusion_bytes);
    std::vector<float> quiet_agg;
    for (size_t b = 0; b < sched.n_buckets(); ++b) {
      auto h = sched.submit_bucket(w, b, /*instrument=*/false);
      Tensor agg = w.wait(std::move(h));
      sched.apply_bucket(b, agg,
                         [&](size_t slot, std::span<float>,
                             std::span<const float> g) {
                           if (slot == 1) quiet_agg.assign(g.begin(), g.end());
                         });
    }
    ASSERT_EQ(quiet_agg.size(), 8u);
    float quiet_mass = 0.0f;
    for (float v : quiet_agg) quiet_mass += std::abs(v);
    if (fusion_bytes == SIZE_MAX) {
      EXPECT_EQ(quiet_mass, 0.0f);  // budget went to the loud tensor
    } else {
      EXPECT_GT(quiet_mass, 0.0f);  // per-tensor selection keeps 4 of 8
    }
  }
}

// ---------------------------------------------------------------------------
// Trainer integration

Benchmark tiny_cnn() { return make_cnn_classification(0.1); }

TrainConfig tiny_config(const Benchmark& b) {
  TrainConfig cfg = default_config(b);
  cfg.n_workers = 2;
  cfg.net.n_workers = 2;
  cfg.epochs = 2;
  return cfg;
}

// The legacy trainer exchange loop, as it existed before the scheduler
// refactor: per-tensor exchange() calls, or one fused exchange over the
// concatenation. Replicates exactly the parameter-affecting operations of
// train() (same seeds, same epoch order, same slices, same optimizer
// slots) and returns rank 0's final parameters, so the scheduler endpoints
// can be checked bit-for-bit against the pre-refactor semantics.
std::vector<float> legacy_train_params(const Benchmark& b,
                                       const TrainConfig& cfg, bool fused) {
  comm::World world(cfg.n_workers);
  std::vector<float> final_params;
  auto worker = [&](int rank) {
    auto model = b.factory(cfg.seed);
    core::GraceWorker grace(cfg.grace, world.comm(rank), cfg.net,
                            cfg.seed * 7919ULL + static_cast<uint64_t>(rank));
    auto optimizer = optim::make_optimizer(cfg.optimizer);
    Rng batch_rng(cfg.seed * 104729ULL + static_cast<uint64_t>(rank));
    const int64_t train_n = model->train_size();
    const int64_t global_batch =
        static_cast<int64_t>(cfg.n_workers) * cfg.batch_per_worker;
    Tensor flat = Tensor::zeros(Shape{{model->module().num_parameters()}});
    std::vector<int64_t> wrapped;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
      std::vector<int64_t> order(static_cast<size_t>(train_n));
      std::iota(order.begin(), order.end(), 0);
      Rng rng(cfg.seed * 1000003ULL + static_cast<uint64_t>(epoch));
      rng.shuffle(std::span<int64_t>(order));
      const int64_t iters = std::max<int64_t>(1, train_n / global_batch);
      for (int64_t it = 0; it < iters; ++it) {
        const int64_t base = it * global_batch +
                             static_cast<int64_t>(rank) * cfg.batch_per_worker;
        std::span<const int64_t> slice;
        if (base + cfg.batch_per_worker <= train_n) {
          slice = std::span<const int64_t>(
              order.data() + base, static_cast<size_t>(cfg.batch_per_worker));
        } else {
          wrapped.resize(static_cast<size_t>(cfg.batch_per_worker));
          for (int64_t j = 0; j < cfg.batch_per_worker; ++j) {
            wrapped[static_cast<size_t>(j)] =
                order[static_cast<size_t>((base + j) % train_n)];
          }
          slice = wrapped;
        }
        model->module().zero_grad();
        model->forward_backward(slice, batch_rng);
        if (fused) {
          auto f = flat.f32();
          size_t at = 0;
          for (auto& p : model->module().parameters()) {
            ops::copy(f.subspan(at, static_cast<size_t>(p.value->grad.numel())),
                      p.value->grad.f32());
            at += static_cast<size_t>(p.value->grad.numel());
          }
          Tensor agg = grace.exchange(flat, "fused");
          auto a = agg.f32();
          at = 0;
          size_t slot = 0;
          for (auto& p : model->module().parameters()) {
            const auto len = static_cast<size_t>(p.value->data.numel());
            optimizer->apply(slot++, p.value->data.f32(), a.subspan(at, len));
            at += len;
          }
        } else {
          size_t slot = 0;
          for (auto& p : model->module().parameters()) {
            Tensor agg = grace.exchange(p.value->grad, p.name);
            optimizer->apply(slot++, p.value->data.f32(), agg.f32());
          }
        }
      }
    }
    if (rank == 0) {
      for (auto& p : model->module().parameters()) {
        auto v = p.value->data.f32();
        final_params.insert(final_params.end(), v.begin(), v.end());
      }
    }
  };
  std::vector<std::thread> threads;
  for (int r = 1; r < cfg.n_workers; ++r) threads.emplace_back(worker, r);
  worker(0);
  for (auto& t : threads) t.join();
  return final_params;
}

TEST(SchedulerTrainer, EndpointsBitIdenticalToLegacyExchangeLoop) {
  // fusion_bytes = 0 must reproduce the deleted per-tensor branch and
  // SIZE_MAX the deleted fused branch, bit for bit — including stateful
  // error feedback and randomized quantization.
  Benchmark b = tiny_cnn();
  for (const char* spec : {"topk(0.1)", "qsgd(8)", "efsignsgd"}) {
    TrainConfig cfg = tiny_config(b);
    cfg.epochs = 1;
    cfg.grace.compressor_spec = spec;
    cfg.fusion_bytes = 0;
    EXPECT_EQ(train(b.factory, cfg).final_parameters,
              legacy_train_params(b, cfg, /*fused=*/false))
        << spec << " per-tensor";
    cfg.fusion_bytes = SIZE_MAX;
    EXPECT_EQ(train(b.factory, cfg).final_parameters,
              legacy_train_params(b, cfg, /*fused=*/true))
        << spec << " fused";
  }
}

TEST(SchedulerTrainer, MidCapBucketsStaySyncedAndCountIsIntermediate) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.1)";
  // A cap between the largest tensor and the full model lands strictly
  // between the endpoints.
  cfg.fusion_bytes = size_t{20} * 1024;
  Trace trace(cfg.n_workers);
  cfg.trace = &trace;
  RunResult run = train(b.factory, cfg);
  EXPECT_TRUE(run.replicas_in_sync);
  EXPECT_GT(run.buckets_per_iter, 1);
  EXPECT_LT(run.buckets_per_iter, run.gradient_tensors);
  // Stable bucket ids flow into the per-bucket trace summaries: every
  // bucket is exchanged once per iteration (the fused path used to funnel
  // everything into slot 0).
  ASSERT_EQ(static_cast<int64_t>(run.tensor_trace.size()),
            run.buckets_per_iter);
  const int64_t iters = static_cast<int64_t>(run.epochs.size()) *
                        run.samples_per_epoch /
                        (cfg.n_workers * cfg.batch_per_worker);
  int64_t numel_total = 0;
  for (const auto& t : run.tensor_trace) {
    EXPECT_EQ(t.exchanges, iters) << t.name;
    EXPECT_GT(t.wire_bytes, 0u) << t.name;
    numel_total += t.numel;
  }
  EXPECT_EQ(numel_total, run.model_parameters);
}

TEST(SchedulerTrainer, OverlapChangesOnlyTiming) {
  // The overlap timeline reinterprets when simulated work happens; it must
  // not change what is computed.
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.1)";
  cfg.epochs = 1;
  RunResult additive = train(b.factory, cfg);
  cfg.time.overlap = true;
  RunResult overlapped = train(b.factory, cfg);
  EXPECT_EQ(additive.final_parameters, overlapped.final_parameters);
  EXPECT_EQ(additive.parameters_crc32, overlapped.parameters_crc32);
}

TEST(SchedulerTrainer, AdditiveModeIterationEqualsPhaseSum) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "qsgd(8)";
  RunResult run = train(b.factory, cfg);
  EXPECT_NEAR(run.iteration_s, run.phases.total_s(),
              1e-9 * run.phases.total_s());
  EXPECT_DOUBLE_EQ(run.overlap_saved_s, 0.0);
  EXPECT_DOUBLE_EQ(run.overlap_fraction, 0.0);
}

TEST(SchedulerTrainer, OverlapBeatsAdditiveAndRespectsLowerBounds) {
  // Per-tensor buckets on a comm-heavy config: early buckets' collectives
  // hide behind the backward tail, so the critical path lands strictly
  // below the additive sum — but never below the compute or the link
  // occupancy floor.
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "topk(0.1)";
  cfg.fusion_bytes = 0;
  cfg.net.bandwidth_gbps = 1.0;  // make comm worth hiding
  cfg.time.overlap = true;
  RunResult run = train(b.factory, cfg);
  EXPECT_LT(run.iteration_s, run.phases.total_s());
  EXPECT_GT(run.overlap_saved_s, 0.0);
  EXPECT_GT(run.overlap_fraction, 0.0);
  EXPECT_LT(run.overlap_fraction, 1.0);
  EXPECT_GE(run.iteration_s, run.compute_s + run.optimizer_s);
  EXPECT_GE(run.iteration_s, run.comm_s + run.optimizer_s);
}

TEST(SchedulerTrainer, FaultStallStillAccumulatesUnderOverlap) {
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.grace.compressor_spec = "none";
  cfg.time.overlap = true;
  faults::FaultSpec spec;
  spec.straggler_prob = 1.0;
  spec.straggler_rank = 1;
  spec.straggler_delay_s = 5e-3;
  faults::FaultPlan plan(spec);
  cfg.faults = &plan;
  RunResult run = train(b.factory, cfg);
  // The injected stall is pure bookkeeping and lands on top of the
  // pipeline critical path, exactly as it did on top of the additive sum.
  EXPECT_DOUBLE_EQ(run.phases.stall_s, 5e-3);
  EXPECT_GE(run.iteration_s, run.compute_s + run.optimizer_s + 5e-3);
  EXPECT_TRUE(run.replicas_in_sync);
}

TEST(SchedulerTrainer, SchedulerStress) {
  // The TSan target (-DGRACE_TSAN=ON, see the top-level CMakeLists): four
  // worker threads driving bucketed submit/wait pipelines concurrently with
  // tracing, metrics, and link faults attached — every shared surface of
  // the scheduler path under one run.
  Benchmark b = tiny_cnn();
  TrainConfig cfg = tiny_config(b);
  cfg.n_workers = 4;
  cfg.net.n_workers = 4;
  cfg.epochs = 1;
  cfg.grace.compressor_spec = "topk(0.1)";
  cfg.fusion_bytes = size_t{20} * 1024;
  cfg.time.overlap = true;
  faults::FaultSpec spec;
  spec.drop_prob = 0.02;
  spec.corrupt_prob = 0.02;
  faults::FaultPlan plan(spec);
  cfg.faults = &plan;
  Trace trace(cfg.n_workers);
  cfg.trace = &trace;
  MetricRegistry metrics(cfg.n_workers);
  cfg.metrics = &metrics;
  RunResult run = train(b.factory, cfg);
  EXPECT_TRUE(run.replicas_in_sync);
  EXPECT_GT(run.iteration_s, 0.0);
  bool saw_sched_counter = false;
  for (const auto& c : run.metric_counters) {
    if (c.name == "sched.bucket_exchanges") {
      saw_sched_counter = true;
      EXPECT_GT(c.value, 0u);
    }
  }
  EXPECT_TRUE(saw_sched_counter);
  // Overlap is visible in the trace: some bucket stage starts before the
  // iteration's compute has finished.
  bool overlapped_event = false;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.phase == Phase::Comm && ev.start_s >= 0.0 &&
        ev.start_s < run.compute_s) {
      overlapped_event = true;
    }
  }
  EXPECT_TRUE(overlapped_event);
}

}  // namespace
}  // namespace grace::sim
